package service

import (
	"context"
	"fmt"
	"sync"
	"time"
)

// DefaultTenant is the tenant requests without an API key land in:
// anonymous traffic shares one bucket and one fair-queue lane instead
// of bypassing the quota machinery.
const DefaultTenant = "anonymous"

// TenantHeader is the HTTP header carrying the tenant identity. The
// service treats the key itself as the tenant id — it does
// admission accounting, not authentication.
const TenantHeader = "X-API-Key"

// maxTenantLen bounds a tenant id; longer keys are truncated, so an
// attacker cannot grow quota-bucket keys or metric labels without
// bound.
const maxTenantLen = 64

type tenantCtxKey struct{}

// WithTenant tags ctx with a tenant identity for SubmitCtx: quota
// admission and fair-queue placement happen under it. Empty means
// DefaultTenant.
func WithTenant(ctx context.Context, tenant string) context.Context {
	return context.WithValue(ctx, tenantCtxKey{}, tenant)
}

// TenantFrom extracts the tenant identity from ctx, normalized:
// DefaultTenant when absent or empty, truncated to maxTenantLen.
func TenantFrom(ctx context.Context) string {
	t, _ := ctx.Value(tenantCtxKey{}).(string)
	if t == "" {
		return DefaultTenant
	}
	if len(t) > maxTenantLen {
		t = t[:maxTenantLen]
	}
	return t
}

// QuotaError reports a submission rejected by the tenant's admission
// quota; RetryAfter is when the bucket will have refilled one token.
type QuotaError struct {
	Tenant     string
	RetryAfter time.Duration
}

func (e *QuotaError) Error() string {
	return fmt.Sprintf("service: tenant %q over admission quota; retry in %s", e.Tenant, e.RetryAfter)
}

// quotas is per-tenant token-bucket admission control: each tenant
// accrues rate tokens/second up to burst, and every admitted solve
// spends one. Cache hits and coalesced submissions are free — quotas
// protect solver capacity, and answering from the cache costs none.
// Buckets have their own lock (takes happen under the scheduler's
// mutex, but nothing here calls back into the scheduler).
type quotas struct {
	mu    sync.Mutex
	rate  float64 // tokens per second
	burst float64
	m     map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// maxQuotaBuckets bounds the tenant map; at the cap, full (stale)
// buckets are evicted first. Tenants evicted at the cap simply start
// a fresh (full) bucket on their next request.
const maxQuotaBuckets = 4096

// newQuotas returns admission quotas at rate tokens/second with the
// given burst, or nil (quotas disabled) when rate ≤ 0.
func newQuotas(rate float64, burst int) *quotas {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	return &quotas{rate: rate, burst: float64(burst), m: make(map[string]*bucket)}
}

// take spends one token from the tenant's bucket. When the bucket is
// empty it reports false with the refill wait, clamped to [1s, 5m]
// like the scheduler's backlog-based Retry-After.
func (q *quotas) take(tenant string) (bool, time.Duration) {
	now := time.Now()
	q.mu.Lock()
	defer q.mu.Unlock()
	b, ok := q.m[tenant]
	if !ok {
		if len(q.m) >= maxQuotaBuckets {
			q.evictFullLocked()
		}
		b = &bucket{tokens: q.burst, last: now}
		q.m[tenant] = b
	}
	b.tokens += q.rate * now.Sub(b.last).Seconds()
	if b.tokens > q.burst {
		b.tokens = q.burst
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	wait := time.Duration((1 - b.tokens) / q.rate * float64(time.Second))
	if wait < time.Second {
		wait = time.Second
	}
	if wait > 5*time.Minute {
		wait = 5 * time.Minute
	}
	return false, wait
}

// evictFullLocked removes buckets that have refilled to burst — the
// tenant has been idle long enough that dropping the bucket changes
// nothing for them.
func (q *quotas) evictFullLocked() {
	now := time.Now()
	for name, b := range q.m {
		if b.tokens+q.rate*now.Sub(b.last).Seconds() >= q.burst {
			delete(q.m, name)
		}
	}
}
