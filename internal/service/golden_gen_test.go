package service

import (
	"encoding/json"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/circuits"
	"repro/internal/wire"
)

// TestGenerateGoldens regenerates the pin-test fixtures under
// placer/testdata: the canonical request and the solved result for
// each pinned benchmark. It only runs when GEN_GOLDEN=1. The
// checked-in fixtures were produced by the pre-refactor (dispatch
// switch) service.Solve at commit 0546e29, so the placer pin tests
// prove the registry refactor reproduces them bit for bit; regenerate
// only when a placement change is intentional, and say so in the
// commit.
func TestGenerateGoldens(t *testing.T) {
	if os.Getenv("GEN_GOLDEN") == "" {
		t.Skip("set GEN_GOLDEN=1 to regenerate pin fixtures")
	}
	dir := filepath.Join("..", "..", "placer", "testdata")
	for name, req := range PinRequests(t) {
		res, err := Solve(t.Context(), req, nil)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		res.RuntimeMS = 0 // wall-clock is not pinnable
		reqJSON, err := json.MarshalIndent(req, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		resJSON, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "pin_"+name+"_request.json"), append(reqJSON, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dir, "pin_"+name+"_result.json"), append(resJSON, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("%s: cost %.6g stages %d", name, res.Cost, res.Stages)
	}
}

// PinRequests builds the pinned benchmark requests: the Miller op amp
// on seqpair, hbstar and the portfolio race, plus a synthetic n=1000
// sequence-pair instance on a short schedule.
func PinRequests(t *testing.T) map[string]*wire.Request {
	t.Helper()
	miller, err := wire.FromBench(circuits.MillerOpAmp())
	if err != nil {
		t.Fatal(err)
	}
	reqs := map[string]*wire.Request{
		"miller_seqpair":   {Problem: *miller, Options: wire.Options{Method: wire.MethodSeqPair, Seed: 1}},
		"miller_hbstar":    {Problem: *miller, Options: wire.Options{Method: wire.MethodHBStar, Seed: 1}},
		"miller_portfolio": {Problem: *miller, Options: wire.Options{Method: wire.MethodPortfolio, Seed: 1}},
		"n1000_seqpair": {Problem: *pinN1000(), Options: wire.Options{
			Method: wire.MethodSeqPair, Seed: 7, MovesPerStage: 150, MaxStages: 8, StallStages: 8,
		}},
	}
	for _, r := range reqs {
		r.Problem.Normalize()
		r.Options.Normalize()
		if err := r.Validate(); err != nil {
			t.Fatal(err)
		}
	}
	return reqs
}

// pinN1000 is the n=1000 sequence-pair pin instance: 1000 modules and
// 2000 random 3–6 pin nets from a fixed seed (the wirelength-heavy
// regime of the root benchmarks).
func pinN1000() *wire.Problem {
	const n = 1000
	rng := rand.New(rand.NewSource(42))
	p := &wire.Problem{Name: "pin-n1000", Modules: make([]wire.Module, n)}
	for i := range p.Modules {
		p.Modules[i] = wire.Module{
			Name: "m" + itoa(i),
			W:    1 + rng.Intn(50),
			H:    1 + rng.Intn(50),
		}
	}
	for len(p.Nets) < 2*n {
		pins := 3 + rng.Intn(4)
		seen := map[int]bool{}
		var net []int
		for len(net) < pins {
			m := rng.Intn(n)
			if !seen[m] {
				seen[m] = true
				net = append(net, m)
			}
		}
		p.Nets = append(p.Nets, net)
	}
	p.Objective.WireWeight = 1
	return p
}

func itoa(i int) string {
	if i == 0 {
		return "0"
	}
	var b [8]byte
	pos := len(b)
	for i > 0 {
		pos--
		b[pos] = byte('0' + i%10)
		i /= 10
	}
	return string(b[pos:])
}
