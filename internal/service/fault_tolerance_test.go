package service

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"runtime"
	"strconv"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/wire"
)

// slowRequest is a solve that cannot finish on its own inside a test's
// patience: a near-flat cooling schedule with enormous stage bounds,
// so only a deadline or a cancel ends it.
func slowRequest(t *testing.T, seed int64) *wire.Request {
	t.Helper()
	return &wire.Request{Problem: *benchProblem(t, "buffer"), Options: wire.Options{
		Method: wire.MethodSeqPair, MovesPerStage: 400, MaxStages: 100000, StallStages: 100000,
		Cooling: 0.9999, Seed: seed,
	}}
}

// TestResumeFromCheckpoint pins the tentpole resume guarantee: a
// deadline-expired job keeps its best-so-far result, and resubmitting
// the identical request (same content hash) resumes annealing from
// the stored checkpoint, finishing with a cost no worse than the
// interrupted run's best.
func TestResumeFromCheckpoint(t *testing.T) {
	s := New(Config{Workers: 1, PressureDepth: -1})
	defer s.Close()

	req := slowRequest(t, 7)
	req.Options.TimeoutMS = 300
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res1 := waitJob(t, j1)
	if j1.State() != StateCancelled {
		t.Fatalf("deadline-bounded job ended %s (err %q), want cancelled", j1.State(), j1.Err())
	}
	if res1 == nil || !res1.Cancelled {
		t.Fatalf("interrupted job lost its best-so-far result: %+v", res1)
	}
	if m := s.Metrics(); m.CheckpointsSaved == 0 || m.CheckpointEntries == 0 {
		t.Fatalf("interrupted run left no checkpoint: %+v", m)
	}

	// Identical request, longer deadline: TimeoutMS is excluded from
	// the content hash, so this resumes the same checkpoint instead of
	// restarting cold, and its best can only improve on the stored one.
	req2 := slowRequest(t, 7)
	req2.Options.TimeoutMS = 1200
	j2, err := s.Submit(req2)
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitJob(t, j2)
	if res2 == nil {
		t.Fatalf("resumed job %s lost its result (err %q)", j2.State(), j2.Err())
	}
	if res2.Cost > res1.Cost {
		t.Fatalf("resume regressed: interrupted best %v, resumed final %v", res1.Cost, res2.Cost)
	}
	if m := s.Metrics(); m.CheckpointsResumed == 0 {
		t.Fatalf("second run never consulted the checkpoint: %+v", m)
	}
}

// TestCheckpointDroppedAfterDone: a solve that completes canonically
// retires its checkpoint — the result cache answers resubmissions.
func TestCheckpointDroppedAfterDone(t *testing.T) {
	s := New(Config{Workers: 1, PressureDepth: -1})
	defer s.Close()
	j, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("job ended %s: %s", j.State(), j.Err())
	}
	if m := s.Metrics(); m.CheckpointEntries != 0 {
		t.Fatalf("completed solve left %d checkpoint entries", m.CheckpointEntries)
	}
}

// TestWorkerPanicQuarantine: with the worker-panic failpoint always
// firing and a zero-crash budget, the job is quarantined as failed
// with the captured stack — and the restarted worker slot then serves
// the next job normally.
func TestWorkerPanicQuarantine(t *testing.T) {
	defer fault.Reset()
	fault.SetSeed(1)
	fault.Enable("scheduler/worker-panic", 1)
	s := New(Config{Workers: 1, MaxJobCrashes: -1})
	defer s.Close()

	j, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != StateFailed {
		t.Fatalf("crashed job ended %s, want failed", j.State())
	}
	if j.Crashes() != 1 {
		t.Fatalf("crash count %d, want 1 (quarantine on first crash)", j.Crashes())
	}
	msg := j.Err()
	for _, want := range []string{"worker panic", "quarantined", "injected worker panic", "workerLoop"} {
		if !bytes.Contains([]byte(msg), []byte(want)) {
			t.Fatalf("quarantine error missing %q:\n%s", want, msg)
		}
	}

	fault.Reset()
	j2, err := s.Submit(millerRequest(t, wire.MethodHBStar))
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)
	if j2.State() != StateDone {
		t.Fatalf("restarted worker failed the next job: %s (%s)", j2.State(), j2.Err())
	}
	m := s.Metrics()
	if m.JobsQuarantined != 1 || m.WorkerCrashes != 1 {
		t.Fatalf("quarantine counters: %+v", m)
	}
	if m.WorkerRestarts < 1 {
		t.Fatalf("worker slot never restarted: %+v", m)
	}
}

// TestWorkerCrashRequeue: below the crash budget the job is requeued
// and, once the fault clears, completes on a restarted worker.
func TestWorkerCrashRequeue(t *testing.T) {
	defer fault.Reset()
	fault.SetSeed(2)
	fault.Enable("scheduler/worker-panic", 1)
	s := New(Config{Workers: 2, MaxJobCrashes: 1000})
	defer s.Close()

	j, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for j.Crashes() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("job never crashed twice (crashes=%d)", j.Crashes())
		}
		time.Sleep(2 * time.Millisecond)
	}
	fault.Disable("scheduler/worker-panic")
	waitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("requeued job ended %s: %s", j.State(), j.Err())
	}
	if j.Crashes() < 2 {
		t.Fatalf("crash counter lost requeues: %d", j.Crashes())
	}
	if m := s.Metrics(); m.WorkerCrashes < 2 || m.JobsQuarantined != 0 {
		t.Fatalf("requeue counters: %+v", m)
	}
}

// TestPressureModeDegrades: when the queue is at or past
// PressureDepth as a job starts, its schedule is shortened, the
// result is flagged degraded, and it never enters the result cache.
func TestPressureModeDegrades(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 8, PressureDepth: 1})
	defer s.Close()

	blocker, err := s.Submit(slowRequest(t, 1))
	if err != nil {
		t.Fatal(err)
	}
	b := millerRequest(t, wire.MethodSeqPair)
	b.Options.Seed = 41
	jb, err := s.Submit(b)
	if err != nil {
		t.Fatal(err)
	}
	c := millerRequest(t, wire.MethodSeqPair)
	c.Options.Seed = 42
	if _, err := s.Submit(c); err != nil {
		t.Fatal(err)
	}
	s.Cancel(blocker.ID)
	waitJob(t, blocker)

	// jb starts with c still queued behind it → pressure mode.
	waitJob(t, jb)
	if jb.State() != StateDone {
		t.Fatalf("degraded job ended %s: %s", jb.State(), jb.Err())
	}
	if !jb.Degraded() {
		t.Fatal("job run under queue pressure not flagged degraded")
	}

	// Quiet now: the identical request must re-solve (the degraded
	// result was not cached) and come back canonical.
	b2 := millerRequest(t, wire.MethodSeqPair)
	b2.Options.Seed = 41
	j2, err := s.Submit(b2)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2)
	if j2.CacheHit() {
		t.Fatal("degraded result leaked into the result cache")
	}
	if j2.Degraded() {
		t.Fatal("job solved on a quiet scheduler flagged degraded")
	}
	if m := s.Metrics(); m.JobsDegraded < 1 {
		t.Fatalf("degraded counter: %+v", m)
	}
}

// TestLoadSheddingRetryAfter: a full queue answers HTTP 429 with a
// positive integer Retry-After header.
func TestLoadSheddingRetryAfter(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1, PressureDepth: -1})
	defer s.Close()
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	blocker, err := s.Submit(slowRequest(t, 2))
	if err != nil {
		t.Fatal(err)
	}
	defer func() { s.Cancel(blocker.ID); waitJob(t, blocker) }()
	time.Sleep(50 * time.Millisecond) // let the one worker pick it up

	var resp *http.Response
	for seed := int64(10); seed < 20; seed++ {
		r := slowRequest(t, seed)
		resp = postRaw(t, srv.URL, r)
		if resp.StatusCode == http.StatusTooManyRequests {
			break
		}
		resp.Body.Close()
		resp = nil
	}
	if resp == nil {
		t.Fatal("queue never shed load with 429")
	}
	defer resp.Body.Close()
	ra, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || ra < 1 {
		t.Fatalf("Retry-After header %q, want a positive integer", resp.Header.Get("Retry-After"))
	}
	if m := s.Metrics(); m.Shed < 1 {
		t.Fatalf("shed counter: %+v", m)
	}
}

// TestDrainOrdering pins graceful shutdown: once draining begins,
// late POSTs are refused with 503 while the in-flight job still
// completes (best-so-far kept) before Close returns.
func TestDrainOrdering(t *testing.T) {
	s := New(Config{Workers: 1, PressureDepth: -1})
	srv := httptest.NewServer(NewHandler(s))
	defer srv.Close()

	// A long stage: the worker only observes cancellation at stage
	// boundaries, so Close stays in its drain wait long enough for the
	// 503 probe below to land during it.
	// slowRequest's stages run for hundreds of milliseconds on this
	// bench; cancellation lands at a stage boundary, so once annealing
	// is underway Close stays draining for most of a stage.
	long := slowRequest(t, 3)
	j, err := s.Submit(long)
	if err != nil {
		t.Fatal(err)
	}
	// Wait past engine setup (temperature calibration observes no
	// context) into real annealing before starting the drain.
	for {
		if p, ok := j.Progress(); ok && p.Stage >= 1 {
			break
		}
		if j.State().Terminal() {
			t.Fatalf("long job ended %s before annealing: %s", j.State(), j.Err())
		}
		time.Sleep(time.Millisecond)
	}

	closed := make(chan struct{})
	go func() { s.Close(); close(closed) }()

	var got503 bool
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		resp := postRaw(t, srv.URL, slowRequest(t, 99))
		code := resp.StatusCode
		resp.Body.Close()
		if code == http.StatusServiceUnavailable {
			got503 = true
			break
		}
		time.Sleep(time.Millisecond)
	}
	if !got503 {
		t.Fatal("draining scheduler never refused a late POST with 503")
	}
	select {
	case <-closed:
		t.Fatal("drain finished before the late POST was refused — ordering not pinned")
	default:
	}

	select {
	case <-closed:
	case <-time.After(60 * time.Second):
		t.Fatal("Close wedged waiting for the in-flight job")
	}
	if j.State() != StateCancelled {
		t.Fatalf("in-flight job ended %s across the drain, want cancelled", j.State())
	}
	if j.Result() == nil {
		t.Fatal("drained job lost its best-so-far result")
	}
}

// TestPortfolioCancelNoGoroutineLeak: cancelling mid-portfolio-race
// must wind down every racer; the process goroutine count returns to
// its pre-job level.
func TestPortfolioCancelNoGoroutineLeak(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	before := runtime.NumGoroutine()

	req := slowRequest(t, 5)
	req.Options.Method = wire.MethodPortfolio
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	for { // wait until the race is actually running goroutines
		if _, ok := j.Progress(); ok {
			break
		}
		if j.State().Terminal() {
			t.Fatalf("portfolio ended %s before progress: %s", j.State(), j.Err())
		}
		time.Sleep(time.Millisecond)
	}
	s.Cancel(j.ID)
	waitJob(t, j)

	deadline := time.Now().Add(30 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= before+2 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<20)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines leaked after portfolio cancel: %d > %d\n%s",
				runtime.NumGoroutine(), before+2, buf[:n])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// postRaw POSTs a wire request and returns the raw HTTP response.
func postRaw(t *testing.T, base string, req *wire.Request) *http.Response {
	t.Helper()
	body, err := json.Marshal(req)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}
