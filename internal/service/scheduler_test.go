package service

import (
	"bytes"
	"encoding/json"
	"testing"
	"time"

	"repro/internal/circuits"
	"repro/internal/wire"
	"repro/placer"
)

// quickOptions keeps test solves fast but long enough to observe.
func quickOptions(method string) wire.Options {
	return wire.Options{Method: method, MovesPerStage: 40, MaxStages: 20, StallStages: 20, Seed: 1}
}

func millerRequest(t *testing.T, method string) *wire.Request {
	t.Helper()
	p, err := wire.FromBench(circuits.MillerOpAmp())
	if err != nil {
		t.Fatal(err)
	}
	return &wire.Request{Problem: *p, Options: quickOptions(method)}
}

func waitJob(t *testing.T, j *Job) *wire.Result {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(60 * time.Second):
		t.Fatalf("job %s stuck in state %s", j.ID, j.State())
	}
	return j.Result()
}

func TestSchedulerSolvesAndCaches(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()

	req := millerRequest(t, wire.MethodSeqPair)
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res1 := waitJob(t, j1)
	if j1.State() != StateDone {
		t.Fatalf("job1 state %s err %q", j1.State(), j1.Err())
	}
	if res1 == nil || len(res1.Placement) != 9 {
		t.Fatalf("bad result: %+v", res1)
	}
	if len(res1.Violations) != 0 {
		t.Fatalf("seqpair result violates constraints: %v", res1.Violations)
	}
	if j1.CacheHit() {
		t.Fatal("first solve cannot be a cache hit")
	}

	// Identical request → served from cache with an equal result. The
	// cache round-trips entries through its store (possibly through
	// disk), so equality is by serialized value, not pointer identity.
	j2, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	res2 := waitJob(t, j2)
	if !j2.CacheHit() {
		t.Fatal("identical request missed the cache")
	}
	b1, err1 := json.Marshal(res1)
	b2, err2 := json.Marshal(res2)
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !bytes.Equal(b1, b2) {
		t.Fatal("cache returned a different result value")
	}

	// Different seed → different content address → solved fresh.
	req3 := millerRequest(t, wire.MethodSeqPair)
	req3.Options.Seed = 99
	j3, err := s.Submit(req3)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j3)
	if j3.CacheHit() {
		t.Fatal("different options must not hit the cache")
	}

	m := s.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 2 {
		t.Fatalf("cache counters: %+v", m)
	}
	// Cache-hit answers are not solver outcomes: done counts real
	// solves only, and must agree with the latency histogram.
	if m.JobsDone != 2 || m.SolveCount != 2 {
		t.Fatalf("done/solve counters: %+v", m)
	}

	// The cache-hit job id stays queryable like any other.
	if got, ok := s.Job(j2.ID); !ok || got != j2 {
		t.Fatalf("cache-hit job %s not in the job table", j2.ID)
	}
}

func TestSchedulerDeterministicAcrossRuns(t *testing.T) {
	run := func() *wire.Result {
		s := New(Config{Workers: 1})
		defer s.Close()
		j, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
		if err != nil {
			t.Fatal(err)
		}
		return waitJob(t, j)
	}
	a, b := run(), run()
	if a.Cost != b.Cost {
		t.Fatalf("service solves not reproducible: %v vs %v", a.Cost, b.Cost)
	}
	if len(a.Placement) != len(b.Placement) {
		t.Fatal("placement sizes differ")
	}
	for i := range a.Placement {
		if a.Placement[i] != b.Placement[i] {
			t.Fatalf("placements differ at %d: %+v vs %+v", i, a.Placement[i], b.Placement[i])
		}
	}
}

func TestSchedulerCancelQueued(t *testing.T) {
	// One worker, occupy it, then cancel a queued job behind it.
	s := New(Config{Workers: 1})
	defer s.Close()
	slow, err := s.Submit(&wire.Request{Problem: *benchProblem(t, "buffer"), Options: wire.Options{MovesPerStage: 400, MaxStages: 400, StallStages: 400}})
	if err != nil {
		t.Fatal(err)
	}
	queued, err := s.Submit(millerRequest(t, wire.MethodSeqPair))
	if err != nil {
		t.Fatal(err)
	}
	if !s.Cancel(queued.ID) {
		t.Fatal("cancel lost the job")
	}
	if queued.State() != StateCancelled {
		t.Fatalf("queued job state %s after cancel", queued.State())
	}
	if queued.Result() != nil {
		t.Fatal("never-started job cannot have a result")
	}
	s.Cancel(slow.ID)
	waitJob(t, slow)
}

func TestSchedulerCoalescesInflight(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := &wire.Request{Problem: *benchProblem(t, "buffer"), Options: wire.Options{MovesPerStage: 300, MaxStages: 300, StallStages: 300}}
	j1, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	j2, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	if j1 != j2 {
		t.Fatal("identical in-flight submissions were not coalesced")
	}
	if m := s.Metrics(); m.Coalesced != 1 {
		t.Fatalf("coalesced counter: %+v", m)
	}
	s.Cancel(j1.ID)
	waitJob(t, j1)
}

func TestSchedulerQueueFull(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 1})
	defer s.Close()
	mk := func(seed int64) *wire.Request {
		r := &wire.Request{Problem: *benchProblem(t, "buffer"), Options: wire.Options{MovesPerStage: 300, MaxStages: 300, StallStages: 300, Seed: seed}}
		return r
	}
	a, err := s.Submit(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	// Give the single worker a moment to pick up job a, then fill the
	// one queue slot and overflow it. Submission is not racy beyond
	// this: either b sits in the queue or a is still queued and b
	// overflows — both overflow by the third.
	time.Sleep(50 * time.Millisecond)
	var full bool
	for seed := int64(2); seed < 5; seed++ {
		if _, err := s.Submit(mk(seed)); err == ErrQueueFull {
			full = true
			break
		}
	}
	if !full {
		t.Fatal("queue never filled")
	}
	s.Cancel(a.ID)
}

// TestCancelFreesQueueCapacity: cancelling queued jobs must free
// their queue slots immediately, not leave dead entries holding
// capacity until a worker drains them.
func TestCancelFreesQueueCapacity(t *testing.T) {
	s := New(Config{Workers: 1, QueueDepth: 2})
	defer s.Close()
	mk := func(seed int64) *wire.Request {
		return &wire.Request{Problem: *benchProblem(t, "buffer"), Options: wire.Options{
			MovesPerStage: 300, MaxStages: 300, StallStages: 300, Seed: seed}}
	}
	running, err := s.Submit(mk(1))
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the worker pick up job 1
	var queued []*Job
	for seed := int64(2); ; seed++ {
		j, err := s.Submit(mk(seed))
		if err == ErrQueueFull {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		queued = append(queued, j)
		if seed > 10 {
			t.Fatal("queue never filled")
		}
	}
	for _, j := range queued {
		s.Cancel(j.ID)
	}
	if _, err := s.Submit(mk(99)); err != nil {
		t.Fatalf("cancelled jobs still hold queue capacity: %v", err)
	}
	s.Cancel(running.ID)
	waitJob(t, running)
}

func TestPortfolioPicksFeasible(t *testing.T) {
	s := New(Config{Workers: 2})
	defer s.Close()
	j, err := s.Submit(millerRequest(t, wire.MethodPortfolio))
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("portfolio job %s: %s", j.State(), j.Err())
	}
	if res == nil {
		t.Fatal("no result")
	}
	// Miller has symmetry groups and seqpair always satisfies them, so
	// the winner must be violation-free.
	if len(res.Violations) != 0 {
		t.Fatalf("portfolio winner %s violates constraints: %v", res.Method, res.Violations)
	}
	found := false
	for _, m := range placer.PortfolioAlgorithms() {
		if res.Method == m {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner method %q not in the portfolio", res.Method)
	}
}

func benchProblem(t *testing.T, name string) *wire.Problem {
	t.Helper()
	b, err := circuits.TableIBench(name)
	if err != nil {
		t.Fatal(err)
	}
	p, err := wire.FromBench(b)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestProgressMultiStartMoves pins the per-chain progress sources:
// with several multi-start workers the aggregate move counter must
// equal the solver's own total, not a clobbered interleaving.
func TestProgressMultiStartMoves(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.Workers = 3
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("job %s: %s", j.State(), j.Err())
	}
	p, ok := j.Progress()
	if !ok {
		t.Fatal("no progress recorded")
	}
	if p.Moves != res.Moves {
		t.Fatalf("progress saw %d moves, solver did %d", p.Moves, res.Moves)
	}
	if p.BestCost != res.Cost {
		t.Fatalf("progress best %v, final cost %v", p.BestCost, res.Cost)
	}
}

// TestJobRetention: terminal jobs beyond RetainJobs are forgotten,
// queued/running jobs never are.
func TestJobRetention(t *testing.T) {
	s := New(Config{Workers: 2, RetainJobs: 2})
	defer s.Close()
	var ids []string
	for seed := int64(1); seed <= 3; seed++ {
		req := millerRequest(t, wire.MethodSeqPair)
		req.Options.Seed = seed
		j, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j)
		ids = append(ids, j.ID)
	}
	if _, ok := s.Job(ids[0]); ok {
		t.Fatal("oldest terminal job still retained beyond the bound")
	}
	for _, id := range ids[1:] {
		if _, ok := s.Job(id); !ok {
			t.Fatalf("job %s evicted while within the bound", id)
		}
	}
	// Eviction forgets the job record, not the solved result: the
	// content-addressed cache still answers.
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.Seed = 1
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if !j.CacheHit() {
		t.Fatal("result cache lost an entry to job retention")
	}
}

// TestZeroStageScheduleFails: a min_temp above the calibrated initial
// temperature must fail the job, not cache the random initial
// placement as a solved result.
func TestZeroStageScheduleFails(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	req := millerRequest(t, wire.MethodSeqPair)
	req.Options.MinTemp = 1e30
	j, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j)
	if j.State() != StateFailed {
		t.Fatalf("zero-stage schedule finished %s (err %q)", j.State(), j.Err())
	}
	if m := s.Metrics(); m.JobsFailed != 1 || m.JobsDone != 0 {
		t.Fatalf("counters after degenerate schedule: %+v", m)
	}
}

func TestHBStarViaWire(t *testing.T) {
	s := New(Config{Workers: 1})
	defer s.Close()
	j, err := s.Submit(millerRequest(t, wire.MethodHBStar))
	if err != nil {
		t.Fatal(err)
	}
	res := waitJob(t, j)
	if j.State() != StateDone {
		t.Fatalf("hbstar job %s: %s", j.State(), j.Err())
	}
	if res == nil || len(res.Placement) != 9 {
		t.Fatalf("hbstar result incomplete: %+v", res)
	}
	if !res.Legal {
		t.Fatal("hbstar produced an overlapping placement")
	}
}
