package service

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/obs"
	"repro/internal/wire"
)

// sseTick is how often a job stream polls the job's ring and progress
// for new material. SSE is an observation channel — ticks never touch
// the solve, which records into its ring regardless of readers.
const sseTick = 50 * time.Millisecond

// wantsEventStream reports whether the request negotiated SSE.
func wantsEventStream(r *http.Request) bool {
	return strings.Contains(r.Header.Get("Accept"), "text/event-stream")
}

// serveJobStream streams a job over Server-Sent Events until it
// reaches a terminal state or the client disconnects:
//
//   - flight-recorder events, live from the solve's ring as they are
//     recorded, named by their kind ("stage", "exchange", ...) with
//     the ring sequence as the SSE id;
//   - "progress" events carrying the aggregated Progress snapshot
//     whenever it changes;
//   - one final "done" event carrying the terminal JobView.
//
// The stream reads the same ring the engines record into
// (placer.WithRecorder + obs.Flight.Since), so observation never
// perturbs the solve — determinism pins hold with streams attached. A
// crash retry replaces the job's ring; the stream detects the identity
// change and restarts its cursor, so the events always describe the
// attempt that will produce the result.
func serveJobStream(w http.ResponseWriter, r *http.Request, job *Job) {
	fl, ok := w.(http.Flusher)
	if !ok {
		httpError(w, http.StatusNotAcceptable, "connection does not support streaming")
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.Header().Set("X-Accel-Buffering", "no") // proxies must not buffer the stream
	w.WriteHeader(http.StatusOK)
	fl.Flush()

	var (
		ring         *obs.Flight
		cursor       uint64
		lastProgress []byte
	)
	// emit drains new ring events and any progress change; it reports
	// whether every write succeeded (a false means the client is gone).
	emit := func() bool {
		wrote := false
		if cur := job.Ring(); cur != ring {
			ring, cursor = cur, 0
		}
		for _, e := range ring.Since(cursor) {
			cursor = e.Seq + 1
			b, err := json.Marshal(wireEventFromObs(e))
			if err != nil {
				continue
			}
			if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Kind.String(), b); err != nil {
				return false
			}
			wrote = true
		}
		if p, ok := job.Progress(); ok {
			b, err := json.Marshal(p)
			if err == nil && !bytes.Equal(b, lastProgress) {
				lastProgress = b
				if _, err := fmt.Fprintf(w, "event: progress\ndata: %s\n\n", b); err != nil {
					return false
				}
				wrote = true
			}
		}
		if wrote {
			fl.Flush()
		}
		return true
	}

	ticker := time.NewTicker(sseTick)
	defer ticker.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-job.Done():
			emit() // the ring's tail, recorded between the last tick and the finish
			if b, err := json.Marshal(job.View()); err == nil {
				fmt.Fprintf(w, "event: done\ndata: %s\n\n", b)
			}
			fl.Flush()
			return
		case <-ticker.C:
			if !emit() {
				return
			}
		}
	}
}

// wireEventFromObs converts one live ring event to the wire trace
// event shape — the same mapping the completed trace goes through
// (placer trace → wire.TraceFromPlacer), so a client can decode both
// with one type.
func wireEventFromObs(e obs.Event) wire.TraceEvent {
	we := wire.TraceEvent{
		Kind:     e.Kind.String(),
		Worker:   int(e.Worker),
		Stage:    int(e.Stage),
		Temp:     finiteFloat(e.Temp),
		Best:     finiteFloat(e.Best),
		Cur:      finiteFloat(e.Cur),
		Moves:    e.Moves,
		Accepted: e.Accepted,
		Improved: e.Improved,
		PeerTemp: finiteFloat(e.PeerTemp),
		PeerCost: finiteFloat(e.PeerCost),
		Accept:   e.Accept,
		Point:    e.Point,
	}
	if e.Kind == obs.EventExchange {
		we.Peer = int(e.Peer)
	}
	if n := int(e.NKinds); n > 0 {
		we.KindProposed = make([]int64, n)
		we.KindAccepted = make([]int64, n)
		for i := 0; i < n; i++ {
			we.KindProposed[i] = int64(e.KindProposed[i])
			we.KindAccepted[i] = int64(e.KindAccepted[i])
		}
	}
	return we
}

// finiteFloat clamps IEEE specials for JSON, mirroring the wire
// package's trace encoding (+Inf costs price infeasible early states).
func finiteFloat(v float64) float64 {
	switch {
	case math.IsNaN(v):
		return 0
	case math.IsInf(v, 1):
		return math.MaxFloat64
	case math.IsInf(v, -1):
		return -math.MaxFloat64
	}
	return v
}
