package template

import (
	"repro/internal/perf"
)

// FoldedCascodeNames lists the instantiated device names of the
// folded-cascode template: matched pairs expand to two instances.
var FoldedCascodeNames = []string{
	"in1", "in2", "tail",
	"src1", "src2",
	"casp1", "casp2",
	"casn1", "casn2",
	"mir1", "mir2",
}

// ForFoldedCascode builds the layout template of the fully-
// differential folded-cascode OTA together with the per-instance
// footprints derived from the design's device sizes and fold counts.
// Rows mirror a typical production floorplan: NMOS mirror and tail at
// the bottom, NMOS cascodes, the input pair, PMOS cascodes, and PMOS
// sources on top, with symmetric pairs sharing a row.
func ForFoldedCascode(d perf.FoldedCascode) (*Template, map[string][2]float64) {
	t := &Template{
		Rows: [][]string{
			{"mir1", "tail", "mir2"},
			{"casn1", "casn2"},
			{"in1", "in2"},
			{"casp1", "casp2"},
			{"src1", "src2"},
		},
		Nets: map[string][]string{
			"fold_p": {"in1", "src1", "casp1"},
			"fold_n": {"in2", "src2", "casp2"},
			"out_p":  {"casp1", "casn1"},
			"out_n":  {"casp2", "casn2"},
			"tail":   {"in1", "in2", "tail"},
			"mirror": {"mir1", "mir2", "casn1", "casn2"},
		},
		SpacingUM: 1.5,
		ChannelUM: 3,
	}
	foot := map[string][2]float64{}
	put := func(name string, dev interface{ Footprint() (float64, float64) }) {
		w, h := dev.Footprint()
		foot[name] = [2]float64{w, h}
	}
	put("in1", d.In)
	put("in2", d.In)
	put("tail", d.Tail)
	put("src1", d.Src)
	put("src2", d.Src)
	put("casp1", d.CasP)
	put("casp2", d.CasP)
	put("casn1", d.CasN)
	put("casn2", d.CasN)
	put("mir1", d.Mir)
	put("mir2", d.Mir)
	return t, foot
}
