package template

import (
	"math"
	"testing"

	"repro/internal/mos"
	"repro/internal/perf"
)

func simpleTemplate() (*Template, map[string][2]float64) {
	t := &Template{
		Rows: [][]string{
			{"a", "b"},
			{"c"},
		},
		Nets: map[string][]string{
			"n1": {"a", "c"},
			"n2": {"a", "b"},
		},
		SpacingUM: 1,
		ChannelUM: 2,
	}
	foot := map[string][2]float64{
		"a": {10, 5},
		"b": {6, 4},
		"c": {8, 8},
	}
	return t, foot
}

func TestGenerateGeometry(t *testing.T) {
	tmpl, foot := simpleTemplate()
	inst, err := tmpl.Generate(foot)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 width: 10 + 1 + 6 = 17; row 1: 8. Width = 17.
	if math.Abs(inst.WidthUM-17) > 1e-9 {
		t.Fatalf("width = %g, want 17", inst.WidthUM)
	}
	// Height: row0 (5) + channel (2) + row1 (8) = 15.
	if math.Abs(inst.HeightUM-15) > 1e-9 {
		t.Fatalf("height = %g, want 15", inst.HeightUM)
	}
	if math.Abs(inst.DeviceArea-(50+24+64)) > 1e-9 {
		t.Fatalf("device area = %g, want 138", inst.DeviceArea)
	}
	if inst.Deadspace() <= 0 {
		t.Fatal("row template must have positive deadspace")
	}
	// Rows are centered: row 1 (width 8) starts at (17-8)/2 = 4.5.
	if math.Abs(inst.Cells["c"].X-4.5) > 1e-9 {
		t.Fatalf("c.X = %g, want 4.5", inst.Cells["c"].X)
	}
	// No overlaps.
	names := []string{"a", "b", "c"}
	for i := 0; i < len(names); i++ {
		for j := i + 1; j < len(names); j++ {
			ra, rb := inst.Cells[names[i]], inst.Cells[names[j]]
			if ra.X < rb.X+rb.W && rb.X < ra.X+ra.W && ra.Y < rb.Y+rb.H && rb.Y < ra.Y+ra.H {
				t.Fatalf("cells %s and %s overlap", names[i], names[j])
			}
		}
	}
}

func TestGenerateNetLengths(t *testing.T) {
	tmpl, foot := simpleTemplate()
	inst, err := tmpl.Generate(foot)
	if err != nil {
		t.Fatal(err)
	}
	for net := range tmpl.Nets {
		if inst.NetLengthUM[net] <= 0 {
			t.Fatalf("net %s has non-positive length", net)
		}
	}
	// n1 spans two rows and must be longer than the intra-row n2.
	if inst.NetLengthUM["n1"] <= inst.NetLengthUM["n2"] {
		t.Fatalf("cross-row net %g should exceed intra-row net %g",
			inst.NetLengthUM["n1"], inst.NetLengthUM["n2"])
	}
}

func TestGenerateErrors(t *testing.T) {
	tmpl, foot := simpleTemplate()
	delete(foot, "b")
	if _, err := tmpl.Generate(foot); err == nil {
		t.Fatal("missing footprint must fail")
	}
	tmpl2, foot2 := simpleTemplate()
	tmpl2.Rows = append(tmpl2.Rows, []string{"a"})
	if _, err := tmpl2.Generate(foot2); err == nil {
		t.Fatal("duplicate device must fail")
	}
	tmpl3, foot3 := simpleTemplate()
	tmpl3.Rows = append(tmpl3.Rows, nil)
	if _, err := tmpl3.Generate(foot3); err == nil {
		t.Fatal("empty row must fail")
	}
	tmpl4, foot4 := simpleTemplate()
	tmpl4.Nets["bad"] = []string{"a", "zz"}
	if _, err := tmpl4.Generate(foot4); err == nil {
		t.Fatal("net with unknown device must fail")
	}
}

func fcDesign() perf.FoldedCascode {
	n, p := mos.NTech(), mos.PTech()
	return perf.FoldedCascode{
		In:    mos.Device{Tech: n, W: 120, L: 0.7, Folds: 6},
		Tail:  mos.Device{Tech: n, W: 60, L: 1.4, Folds: 4},
		Src:   mos.Device{Tech: p, W: 160, L: 1.4, Folds: 8},
		CasP:  mos.Device{Tech: p, W: 120, L: 0.7, Folds: 6},
		CasN:  mos.Device{Tech: n, W: 60, L: 0.7, Folds: 4},
		Mir:   mos.Device{Tech: n, W: 80, L: 1.4, Folds: 4},
		ITail: 200e-6,
		VDD:   3.3,
		CL:    2e-12,
	}
}

func TestFoldedCascodeTemplate(t *testing.T) {
	d := fcDesign()
	tmpl, foot := ForFoldedCascode(d)
	if len(foot) != len(FoldedCascodeNames) {
		t.Fatalf("footprints for %d devices, want %d", len(foot), len(FoldedCascodeNames))
	}
	inst, err := tmpl.Generate(foot)
	if err != nil {
		t.Fatal(err)
	}
	if inst.WidthUM <= 0 || inst.HeightUM <= 0 {
		t.Fatal("degenerate folded-cascode layout")
	}
	// Matched pairs sit in the same row at the same height.
	for _, pair := range [][2]string{{"in1", "in2"}, {"src1", "src2"}, {"casp1", "casp2"}} {
		a, b := inst.Cells[pair[0]], inst.Cells[pair[1]]
		if a.Y != b.Y || a.H != b.H || a.W != b.W {
			t.Fatalf("pair %v not matched in layout: %+v %+v", pair, a, b)
		}
	}
	// Critical nets routed.
	for _, net := range []string{"fold_p", "fold_n", "out_p", "out_n"} {
		if inst.NetLengthUM[net] <= 0 {
			t.Fatalf("net %s not routed", net)
		}
	}
}

// Folding must reduce the template's aspect-ratio pathology: unfolded
// designs are far from square.
func TestFoldingImprovesTemplateAspect(t *testing.T) {
	d := fcDesign()
	unfolded := d
	for _, dev := range []*mos.Device{&unfolded.In, &unfolded.Tail, &unfolded.Src, &unfolded.CasP, &unfolded.CasN, &unfolded.Mir} {
		dev.Folds = 1
	}
	tm1, f1 := ForFoldedCascode(unfolded)
	i1, err := tm1.Generate(f1)
	if err != nil {
		t.Fatal(err)
	}
	tm2, f2 := ForFoldedCascode(d)
	i2, err := tm2.Generate(f2)
	if err != nil {
		t.Fatal(err)
	}
	ar := func(i *Instance) float64 {
		a := i.AspectRatio()
		if a < 1 {
			a = 1 / a
		}
		return a
	}
	if ar(i2) >= ar(i1) {
		t.Fatalf("folded aspect %g should beat unfolded %g", ar(i2), ar(i1))
	}
}
