// Package template is the procedural layout-template engine of the
// layout-aware sizing flow (Section V). The original work generates
// layouts from Cadence PCELLs driven by SKILL; this package plays the
// same role with the same contract: given device sizes and fold
// counts, deterministically produce a full layout instance — placement
// rows, overall width/height, routed net lengths — in microseconds, so
// it can sit inside the sizing optimizer's inner loop ("layout
// generation turnaround times ... considerably smaller than those of
// optimization-based approaches").
//
// A template is a stack of device rows separated by routing channels.
// Each row places its devices side by side, centered, which preserves
// the matching symmetry of analog rows; nets are routed as horizontal
// trunks in the nearest channel with vertical stubs to the device
// centers, giving a deterministic wire length per net.
package template

import (
	"fmt"
	"math"
)

// RectUM is an axis-aligned rectangle in micrometers.
type RectUM struct {
	X, Y, W, H float64
}

// CenterX returns the x coordinate of the rectangle center.
func (r RectUM) CenterX() float64 { return r.X + r.W/2 }

// CenterY returns the y coordinate of the rectangle center.
func (r RectUM) CenterY() float64 { return r.Y + r.H/2 }

// Template describes a row-based analog layout.
type Template struct {
	// Rows lists device names bottom-up; a device appears exactly
	// once.
	Rows [][]string
	// Nets maps net names to the devices they connect.
	Nets map[string][]string
	// SpacingUM separates devices within a row (default 1 µm).
	SpacingUM float64
	// ChannelUM is the routing channel height between rows (default
	// 2 µm).
	ChannelUM float64
}

// Instance is one generated layout.
type Instance struct {
	WidthUM, HeightUM float64
	Cells             map[string]RectUM
	// NetLengthUM is the routed length of each net in µm.
	NetLengthUM map[string]float64
	DeviceArea  float64 // sum of device footprints, µm²
}

// Area returns the bounding-box area in µm².
func (i *Instance) Area() float64 { return i.WidthUM * i.HeightUM }

// AspectRatio returns height / width.
func (i *Instance) AspectRatio() float64 {
	if i.WidthUM == 0 {
		return 0
	}
	return i.HeightUM / i.WidthUM
}

// Deadspace returns bounding-box area minus device area.
func (i *Instance) Deadspace() float64 { return i.Area() - i.DeviceArea }

// Generate instantiates the template for the given device footprints
// (width, height in µm).
func (t *Template) Generate(foot map[string][2]float64) (*Instance, error) {
	spacing := t.SpacingUM
	if spacing <= 0 {
		spacing = 1
	}
	channel := t.ChannelUM
	if channel <= 0 {
		channel = 2
	}
	seen := map[string]bool{}
	inst := &Instance{Cells: map[string]RectUM{}, NetLengthUM: map[string]float64{}}

	// First pass: row extents.
	type rowGeom struct {
		width, height float64
	}
	rows := make([]rowGeom, len(t.Rows))
	for ri, row := range t.Rows {
		if len(row) == 0 {
			return nil, fmt.Errorf("template: row %d is empty", ri)
		}
		for _, d := range row {
			f, ok := foot[d]
			if !ok {
				return nil, fmt.Errorf("template: no footprint for device %q", d)
			}
			if seen[d] {
				return nil, fmt.Errorf("template: device %q in two rows", d)
			}
			seen[d] = true
			rows[ri].width += f[0]
			if f[1] > rows[ri].height {
				rows[ri].height = f[1]
			}
			inst.DeviceArea += f[0] * f[1]
		}
		rows[ri].width += spacing * float64(len(row)-1)
		if rows[ri].width > inst.WidthUM {
			inst.WidthUM = rows[ri].width
		}
	}
	// Second pass: place rows bottom-up, centered.
	y := 0.0
	rowMidY := make([]float64, len(t.Rows))
	for ri, row := range t.Rows {
		x := (inst.WidthUM - rows[ri].width) / 2
		for _, d := range row {
			f := foot[d]
			inst.Cells[d] = RectUM{X: x, Y: y, W: f[0], H: f[1]}
			x += f[0] + spacing
		}
		rowMidY[ri] = y + rows[ri].height
		y += rows[ri].height
		if ri != len(t.Rows)-1 {
			y += channel
		}
	}
	inst.HeightUM = y

	// Route nets: horizontal trunk at the channel above the lowest
	// connected row, vertical stubs from each device center.
	rowOf := map[string]int{}
	for ri, row := range t.Rows {
		for _, d := range row {
			rowOf[d] = ri
		}
	}
	for net, devs := range t.Nets {
		if len(devs) < 2 {
			continue
		}
		minX, maxX := math.Inf(1), math.Inf(-1)
		trunkRow, sameRow := len(t.Rows), true
		for _, d := range devs {
			c, ok := inst.Cells[d]
			if !ok {
				return nil, fmt.Errorf("template: net %q references unplaced device %q", net, d)
			}
			minX = math.Min(minX, c.CenterX())
			maxX = math.Max(maxX, c.CenterX())
			if rowOf[d] < trunkRow {
				trunkRow = rowOf[d]
			}
			if rowOf[d] != rowOf[devs[0]] {
				sameRow = false
			}
		}
		length := maxX - minX
		if !sameRow {
			// Trunk in the channel above the lowest connected row,
			// vertical stubs from each device center.
			trunkY := rowMidY[trunkRow] + channel/2
			for _, d := range devs {
				length += math.Abs(inst.Cells[d].CenterY() - trunkY)
			}
		}
		inst.NetLengthUM[net] = length
	}
	return inst, nil
}
