// Command placeload is a seeded, deterministic load driver for the
// placed daemon: it generates synthetic placement instances
// (placer.Synthetic), fires them at the service as an open-loop
// arrival process across a mix of tenants, and emits a benchjson
// report so cmd/benchtrend can gate service-level regressions the
// same way it gates kernel benchmarks.
//
// Usage:
//
//	placeload [-addr URL] [-clients 1,8,64] [-requests N] [-rate R]
//	          [-mix cold,hot] [-n N] [-seed S] [-tenants N]
//	          [-solvers N] [-queue N] [-cache N]
//
// With no -addr, placeload embeds its own daemon (service.New behind
// an httptest server), so a single process measures the full serve
// path — HTTP decode, admission, queueing, solve, encode — with zero
// network noise. Point -addr at a running placed to drive a real
// deployment instead.
//
// Scenarios are the cross product of -clients and -mix:
//
//	cold  every request is a distinct synthetic instance — each one
//	      pays a full solve; measures solver throughput under load.
//	hot   every request is the same instance — after one solve the
//	      rest are content-addressed cache hits or coalesced waiters;
//	      measures the serve path alone.
//
// The workload is seeded end to end: -seed fixes the synthetic
// instances, the per-request solver seeds, and the tenant assignment
// (X-API-Key round-robins over -tenants keys), so two runs issue
// bit-identical request bodies in the same order. Arrivals are
// open-loop: each client fires at -rate requests/second on a fixed
// schedule whether or not earlier requests have completed, which is
// what makes queueing visible (a closed loop self-throttles and
// hides it). Shed requests (429) count as errors, never retried.
//
// Per scenario the report carries one benchmark record named
// PlaceLoad/clients=C/MIX whose ns_per_op — the number benchtrend
// gates — is the service time per request, best of -reps
// repetitions, estimated as min(median latency, wall/completed).
// The two terms own different regimes: below saturation the median
// end-to-end latency is the serve path itself (and wall/completed is
// just the arrival schedule); past saturation wall/completed is
// inverse aggregate throughput (and the latency term is unbounded
// backlog, useless for a gate). Taking the min self-selects the
// meaningful one, so a >25% regression in either serve-path latency
// or saturated throughput fails the same gate, while neither regime
// flakes on the other's noise. The metrics carry the rest of the
// shape: rps (completed/wall), latency_ms_mean, latency_ms_p50,
// latency_ms_p99, errors.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/service"
	"repro/internal/wire"
	"repro/placer"
)

// benchmark and report mirror cmd/benchjson's document shape, so the
// output feeds cmd/benchtrend unchanged.
type benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

type report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []benchmark `json:"benchmarks"`
}

func main() {
	addr := flag.String("addr", "", "target daemon base URL (empty: embed an in-process daemon)")
	clientsFlag := flag.String("clients", "1,8,64", "comma-separated concurrent client counts, one scenario each")
	requests := flag.Int("requests", 16, "requests per client per scenario")
	reps := flag.Int("reps", 5, "repetitions per scenario; the report keeps the best (go-bench style)")
	rate := flag.Float64("rate", 10, "per-client open-loop arrival rate in requests/second")
	mixFlag := flag.String("mix", "cold,hot", "comma-separated workload mixes: cold (distinct instances) and/or hot (one repeated instance)")
	n := flag.Int("n", 30, "modules per synthetic instance")
	seed := flag.Int64("seed", 1, "master seed for instances, solver seeds and tenant assignment")
	tenants := flag.Int("tenants", 4, "distinct X-API-Key values round-robined across requests")
	solvers := flag.Int("solvers", runtime.NumCPU(), "embedded daemon: solver workers")
	queue := flag.Int("queue", 1024, "embedded daemon: queue depth")
	cache := flag.Int("cache", 4096, "embedded daemon: result cache entries")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "placeload: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}

	clientCounts, err := parseClients(*clientsFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placeload:", err)
		os.Exit(2)
	}
	mixes, err := parseMixes(*mixFlag)
	if err != nil {
		fmt.Fprintln(os.Stderr, "placeload:", err)
		os.Exit(2)
	}
	if *requests < 1 || *rate <= 0 || *n < 1 || *tenants < 1 || *reps < 1 {
		fmt.Fprintln(os.Stderr, "placeload: -requests, -rate, -n, -tenants and -reps must be positive")
		os.Exit(2)
	}

	base := *addr
	if base == "" {
		sched := service.New(service.Config{
			Workers:     *solvers,
			QueueDepth:  *queue,
			CacheSize:   *cache,
			TraceEvents: -1, // load numbers should not include ring recording
		})
		srv := httptest.NewServer(service.NewHandler(sched))
		defer srv.Close()
		defer sched.Close()
		base = srv.URL
	}
	base = strings.TrimRight(base, "/")

	out := report{Goos: runtime.GOOS, Goarch: runtime.GOARCH, CPU: fmt.Sprintf("%d logical", runtime.NumCPU())}
	scenarioIdx := 0
	for _, mix := range mixes {
		for _, c := range clientCounts {
			var best benchmark
			for rep := 0; rep < *reps; rep++ {
				// Every (scenario, rep) gets a disjoint slot-seed
				// space: cold instances must never collide with a
				// previous scenario's, or the shared result cache
				// turns "cold" into a partial cache-hit run. Hot
				// deliberately keeps one instance per scenario across
				// reps — pure cache-hit from the second rep on, so
				// best-of-reps measures the serve path alone.
				seedBase := *seed + int64(scenarioIdx)*(1<<32)
				if mix == "cold" {
					seedBase += int64(rep) * (1 << 20)
				}
				b, err := runScenario(base, scenario{
					clients:  c,
					requests: *requests,
					rate:     *rate,
					mix:      mix,
					modules:  *n,
					seed:     seedBase,
					tenants:  *tenants,
				})
				if err != nil {
					fmt.Fprintln(os.Stderr, "placeload:", err)
					os.Exit(1)
				}
				if rep == 0 || b.NsPerOp < best.NsPerOp {
					best = b
				}
			}
			scenarioIdx++
			out.Benchmarks = append(out.Benchmarks, best)
			fmt.Fprintf(os.Stderr, "placeload: %-28s %8.0f ns/op  %6.1f rps  p99 %.1f ms  errors %.0f\n",
				best.Name, best.NsPerOp, best.Metrics["rps"], best.Metrics["latency_ms_p99"], best.Metrics["errors"])
		}
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "placeload:", err)
		os.Exit(1)
	}
}

type scenario struct {
	clients  int
	requests int
	rate     float64
	mix      string
	modules  int
	seed     int64
	tenants  int
}

// body builds the wire request for one (client, request) slot. Cold
// draws a distinct synthetic instance per slot; hot reuses slot zero's
// instance everywhere, so identical bodies coalesce and cache-hit.
// Everything derives from the scenario seed — two runs of the same
// scenario issue byte-identical requests.
func (sc scenario) body(client, k int) ([]byte, error) {
	slot := int64(client*sc.requests + k)
	if sc.mix == "hot" {
		slot = 0
	}
	p, err := placer.Synthetic(placer.SyntheticSpec{N: sc.modules, Seed: sc.seed + slot})
	if err != nil {
		return nil, fmt.Errorf("synthetic instance: %w", err)
	}
	req := wire.Request{
		Problem: *wire.FromCanon(p),
		Options: wire.Options{
			Seed:          sc.seed + slot,
			MovesPerStage: 30,
			MaxStages:     12,
			StallStages:   12,
		},
	}
	return json.Marshal(&req)
}

// tenant assigns the API key for one slot, round-robin over the pool.
func (sc scenario) tenant(client, k int) string {
	return fmt.Sprintf("load-%d", (client*sc.requests+k)%sc.tenants)
}

type sample struct {
	latency time.Duration
	ok      bool
}

// runScenario fires clients×requests requests open-loop and folds the
// samples into one benchmark record.
func runScenario(base string, sc scenario) (benchmark, error) {
	total := sc.clients * sc.requests
	bodies := make([][]byte, total)
	for c := 0; c < sc.clients; c++ {
		for k := 0; k < sc.requests; k++ {
			b, err := sc.body(c, k)
			if err != nil {
				return benchmark{}, err
			}
			bodies[c*sc.requests+k] = b
		}
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	url := base + "/v1/place?wait=1"
	interval := time.Duration(float64(time.Second) / sc.rate)
	samples := make([]sample, total)
	var wg sync.WaitGroup
	start := time.Now()
	for c := 0; c < sc.clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			// Clients are phase-staggered across one interval so the
			// aggregate arrival process is uniform at rate×clients.
			// Without the stagger every client fires at the same
			// offsets and the "load" is C-way collision bursts —
			// noisy and unrepresentative.
			phase := time.Duration(c) * interval / time.Duration(sc.clients)
			var inner sync.WaitGroup
			for k := 0; k < sc.requests; k++ {
				// Open loop: fire on the schedule, not on completion.
				// Each request runs in its own goroutine so a slow
				// solve never delays the next arrival.
				time.Sleep(time.Until(start.Add(phase + time.Duration(k)*interval)))
				inner.Add(1)
				go func(k int) {
					defer inner.Done()
					idx := c*sc.requests + k
					t0 := time.Now()
					ok := fire(client, url, sc.tenant(c, k), bodies[idx])
					samples[idx] = sample{latency: time.Since(t0), ok: ok}
				}(k)
			}
			inner.Wait()
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	var oks int
	var latencies []time.Duration
	var sum time.Duration
	for _, s := range samples {
		if s.ok {
			oks++
			latencies = append(latencies, s.latency)
			sum += s.latency
		}
	}
	if oks == 0 {
		return benchmark{}, fmt.Errorf("%s/clients=%d: every request failed", sc.mix, sc.clients)
	}
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	pct := func(p float64) float64 {
		i := int(p * float64(len(latencies)-1))
		return float64(latencies[i]) / float64(time.Millisecond)
	}
	// Service time per request: median latency below saturation,
	// inverse aggregate throughput above it (see the package comment
	// for why the min is the right statistic in both regimes).
	nsPerOp := pct(0.50) * float64(time.Millisecond)
	if inv := float64(wall.Nanoseconds()) / float64(oks); inv < nsPerOp {
		nsPerOp = inv
	}
	return benchmark{
		Name:       fmt.Sprintf("PlaceLoad/clients=%d/%s", sc.clients, sc.mix),
		Iterations: int64(oks),
		NsPerOp:    nsPerOp,
		Metrics: map[string]float64{
			"rps":             float64(oks) / wall.Seconds(),
			"latency_ms_mean": float64(sum.Nanoseconds()) / float64(oks) / float64(time.Millisecond),
			"latency_ms_p50":  pct(0.50),
			"latency_ms_p99":  pct(0.99),
			"errors":          float64(total - oks),
		},
	}, nil
}

// fire posts one request and reports whether it came back as a
// terminal, successful job. The body is drained either way so the
// client connection is reusable.
func fire(client *http.Client, url, tenant string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(service.TenantHeader, tenant)
	resp, err := client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	var view service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&view); err != nil {
		io.Copy(io.Discard, resp.Body)
		return false
	}
	return resp.StatusCode == http.StatusOK && view.State == service.StateDone
}

func parseClients(s string) ([]int, error) {
	var out []int
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		v, err := strconv.Atoi(part)
		if err != nil || v < 1 {
			return nil, fmt.Errorf("bad -clients entry %q: want a positive integer", part)
		}
		out = append(out, v)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-clients is empty")
	}
	return out, nil
}

func parseMixes(s string) ([]string, error) {
	var out []string
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		switch part {
		case "":
		case "cold", "hot":
			out = append(out, part)
		default:
			return nil, fmt.Errorf("bad -mix entry %q: want cold or hot", part)
		}
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-mix is empty")
	}
	return out, nil
}
