package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/wire"
	"repro/placer"
)

// cli runs the command in-process, capturing stdout.
func cli(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var stdout, stderr bytes.Buffer
	err := run(args, &stdout, &stderr)
	return stdout.String(), err
}

// TestAlgorithmsFlag: -algorithms lists every registry engine, the
// portfolio meta-method and the classic-only deterministic methods.
func TestAlgorithmsFlag(t *testing.T) {
	out, err := cli(t, "-algorithms")
	if err != nil {
		t.Fatal(err)
	}
	for _, info := range placer.Algorithms() {
		if !strings.Contains(out, info.Name) {
			t.Errorf("listing misses registered algorithm %q:\n%s", info.Name, out)
		}
	}
	for _, name := range []string{"portfolio", "esf", "rsf", "hierarchical"} {
		if !strings.Contains(out, name) {
			t.Errorf("listing misses %q:\n%s", name, out)
		}
	}
}

// TestGeneticEndToEnd: the memetic registry entry is a first-class
// CLI citizen — -algorithms lists it, and a wire-path solve with
// -method genetic:seqpair produces a legal, constraint-satisfying
// placement over every module.
func TestGeneticEndToEnd(t *testing.T) {
	out, err := cli(t, "-algorithms")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "genetic:seqpair") || !strings.Contains(out, "genetic:absolute") {
		t.Fatalf("-algorithms misses the genetic engines:\n%s", out)
	}

	resOut := filepath.Join(t.TempDir(), "genetic.json")
	if _, err := cli(t, "-bench", "miller", "-method", "genetic:seqpair", "-seed", "2", "-json-out", resOut); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(resOut)
	if err != nil {
		t.Fatal(err)
	}
	var res wire.Result
	if err := json.Unmarshal(data, &res); err != nil {
		t.Fatal(err)
	}
	if res.Method != "genetic:seqpair" {
		t.Fatalf("result method %q, want genetic:seqpair", res.Method)
	}
	if len(res.Placement) != 9 { // the Miller op amp's module count
		t.Fatalf("placed %d modules, want 9", len(res.Placement))
	}
	if !res.Legal {
		t.Fatal("genetic placement overlaps")
	}
	if len(res.Violations) != 0 {
		t.Fatalf("genetic seqpair violates constraints: %v", res.Violations)
	}
}

// TestUnknownMethodSharedError: a typo'd method must fail with the
// placer registry's one shared message, on the classic path and the
// wire path alike (the daemon shares it through wire.Options.Validate
// — see the service package's registry test).
func TestUnknownMethodSharedError(t *testing.T) {
	want := placer.ErrUnknownAlgorithm("sorcery").Error()
	if _, err := cli(t, "-bench", "miller", "-method", "sorcery"); err == nil || err.Error() != want {
		t.Errorf("classic path: got %v, want %q", err, want)
	}
	if _, err := cli(t, "-bench", "miller", "-method", "sorcery", "-json-out", os.DevNull); err == nil || err.Error() != want {
		t.Errorf("wire path: got %v, want %q", err, want)
	}
}

// TestBreakdownInTextOutput: both output paths surface the per-term
// cost breakdown.
func TestBreakdownInTextOutput(t *testing.T) {
	out, err := cli(t, "-bench", "miller", "-method", "seqpair")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cost breakdown:") || !strings.Contains(out, "hpwl=") {
		t.Errorf("classic output misses the cost breakdown:\n%s", out)
	}
	out, err = cli(t, "-bench", "miller", "-method", "seqpair",
		"-json-out", filepath.Join(t.TempDir(), "res.json"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out, "cost breakdown:") || !strings.Contains(out, "area=") {
		t.Errorf("wire output misses the cost breakdown:\n%s", out)
	}
}

// TestPinCLIVsDaemonVsGolden is the CLI leg of the refactor pin: the
// CLI's wire mode, the placed daemon's HTTP path, and the checked-in
// pre-refactor fixture must all agree bit for bit on the Miller
// seqpair placement.
func TestPinCLIVsDaemonVsGolden(t *testing.T) {
	dir := t.TempDir()

	// CLI leg: solve through analogplace's wire mode.
	resPath := filepath.Join(dir, "res.json")
	if _, err := cli(t, "-bench", "miller", "-method", "seqpair", "-json-out", resPath); err != nil {
		t.Fatal(err)
	}
	cliRes := readResult(t, resPath)

	// Daemon leg: emit the very request the CLI solved (-json-req) and
	// POST it to a placed-equivalent HTTP server.
	reqPath := filepath.Join(dir, "req.json")
	if _, err := cli(t, "-bench", "miller", "-method", "seqpair", "-json-req", reqPath); err != nil {
		t.Fatal(err)
	}
	reqBody, err := os.ReadFile(reqPath)
	if err != nil {
		t.Fatal(err)
	}
	sched := service.New(service.Config{Workers: 1})
	defer sched.Close()
	srv := httptest.NewServer(service.NewHandler(sched))
	defer srv.Close()
	httpRes, err := http.Post(srv.URL+"/v1/place?wait=1", "application/json", bytes.NewReader(reqBody))
	if err != nil {
		t.Fatal(err)
	}
	defer httpRes.Body.Close()
	if httpRes.StatusCode != http.StatusOK {
		t.Fatalf("daemon status %d", httpRes.StatusCode)
	}
	var view struct {
		Result *wire.Result `json:"result"`
	}
	if err := json.NewDecoder(httpRes.Body).Decode(&view); err != nil {
		t.Fatal(err)
	}
	if view.Result == nil {
		t.Fatal("daemon job has no result")
	}

	// Pre-refactor leg: the golden fixture captured before the placer
	// API existed.
	golden := readResult(t, filepath.Join("..", "..", "placer", "testdata", "pin_miller_seqpair_result.json"))

	for _, leg := range []struct {
		name string
		res  *wire.Result
	}{{"daemon", view.Result}, {"pre-refactor golden", golden}} {
		if cliRes.Cost != leg.res.Cost {
			t.Errorf("CLI cost %v != %s cost %v", cliRes.Cost, leg.name, leg.res.Cost)
		}
		if len(cliRes.Placement) != len(leg.res.Placement) {
			t.Fatalf("CLI placed %d modules, %s %d", len(cliRes.Placement), leg.name, len(leg.res.Placement))
		}
		for i := range cliRes.Placement {
			if cliRes.Placement[i] != leg.res.Placement[i] {
				t.Fatalf("module %d: CLI %+v != %s %+v", i, cliRes.Placement[i], leg.name, leg.res.Placement[i])
			}
		}
	}
}

func readResult(t *testing.T, path string) *wire.Result {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	res := &wire.Result{}
	if err := json.Unmarshal(data, res); err != nil {
		t.Fatal(err)
	}
	return res
}

// TestFlagValidation keeps the CLI's strict flag handling pinned
// through the FlagSet restructure.
func TestFlagValidation(t *testing.T) {
	cases := [][]string{
		{"positional"},
		{"-workers", "0"},
		{"-wire", "-1"},
		{"-outline", "400x300junk"},
		{"-json", ""},
		{"-method", "esf", "-json-out", "-"},
		{"-method", "portfolio"},
		{"-json-req", "-", "-json-out", "-"},
	}
	for _, args := range cases {
		if _, err := cli(t, args...); err == nil {
			t.Errorf("%v: accepted, want error", args)
		}
	}
}
