// Command analogplace places a benchmark circuit with a selectable
// representation and prints the resulting layout statistics and module
// coordinates.
//
// Usage:
//
//	analogplace [-method seqpair|bstar|hbstar|slicing|absolute|esf|rsf]
//	            [-bench miller|folded|<table1-name>] [-seed N]
//	            [-workers N] [-outline WxH] [-outline-weight W]
//	            [-thermal W] [-prox W] [-wire W] [-area W] [-v]
//
// -workers above 1 runs parallel multi-start annealing: that many
// independent chains on separate cores, keeping the best placement.
//
// The objective flags tune the composable cost model: -outline adds a
// fixed-outline penalty (the result reports whether the bounding box
// respects it, or the violation penalty), -thermal adds thermal
// mismatch over symmetry pairs, -prox pulls proximity groups together,
// and -wire/-area reweight the default terms.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/render"
)

func main() {
	method := flag.String("method", "hbstar", "placement method: seqpair, bstar, hbstar, tcg, slicing, absolute, esf, rsf")
	bench := flag.String("bench", "miller", "benchmark: miller, folded, or a Table I name (miller_v2, comparator_v2, folded_casc, buffer, biasynth, lnamixbias)")
	seed := flag.Int64("seed", 1, "random seed for stochastic methods")
	workers := flag.Int("workers", 1, "parallel multi-start annealing chains (1 = serial)")
	outline := flag.String("outline", "", "fixed outline as WxH (e.g. 400x300); adds a quadratic excess penalty")
	outlineWeight := flag.Float64("outline-weight", 0, "fixed-outline penalty weight (0 = heuristic default)")
	thermalWeight := flag.Float64("thermal", 0, "thermal-mismatch weight over symmetry pairs (0 = off)")
	thermalSigma := flag.Float64("thermal-sigma", 0, "thermal decay length (0 = default 50)")
	proxWeight := flag.Float64("prox", 0, "proximity-group pull weight for flat placers (0 = off)")
	wireWeight := flag.Float64("wire", 0, "HPWL weight (0 = method default)")
	areaWeight := flag.Float64("area", 0, "bounding-box area weight (0 = default 1)")
	verbose := flag.Bool("v", false, "print module coordinates")
	svgPath := flag.String("svg", "", "write the placement as SVG to this file")
	flag.Parse()

	b, err := pickBench(*bench)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analogplace:", err)
		os.Exit(1)
	}
	m, err := pickMethod(*method)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analogplace:", err)
		os.Exit(1)
	}
	obj := &core.Objective{
		AreaWeight:    *areaWeight,
		WireWeight:    *wireWeight,
		OutlineWeight: *outlineWeight,
		ProxWeight:    *proxWeight,
		ThermalWeight: *thermalWeight,
		ThermalSigma:  *thermalSigma,
	}
	if *outline != "" {
		if _, err := fmt.Sscanf(*outline, "%dx%d", &obj.OutlineW, &obj.OutlineH); err != nil || obj.OutlineW <= 0 || obj.OutlineH <= 0 {
			fmt.Fprintf(os.Stderr, "analogplace: bad -outline %q (want WxH, e.g. 400x300)\n", *outline)
			os.Exit(1)
		}
	}
	opt := anneal.Options{Seed: *seed, MovesPerStage: 150, MaxStages: 200, StallStages: 40, Workers: *workers}
	res, err := core.PlaceBenchObjective(b, m, opt, obj)
	if err != nil {
		fmt.Fprintln(os.Stderr, "analogplace:", err)
		os.Exit(1)
	}
	bb := res.Placement.BBox()
	fmt.Printf("bench=%s method=%v modules=%d\n", b.Name, m, len(res.Placement))
	fmt.Printf("bounding box: %dx%d  area usage: %.2f%%  legal: %v  runtime: %s\n",
		bb.W, bb.H, 100*res.AreaUsage, res.Legal, res.Runtime.Round(1e6))
	if o := res.Outline; o != nil {
		if o.Fits() {
			fmt.Printf("outline %dx%d: bounding box fits\n", o.W, o.H)
		} else {
			fmt.Printf("outline %dx%d: violated by %dx%d, penalty %.4g\n",
				o.W, o.H, o.ExcessW, o.ExcessH, o.Penalty)
		}
	}
	if len(res.Violations) > 0 {
		fmt.Println("constraint violations:")
		for _, v := range res.Violations {
			fmt.Println("  -", v)
		}
	} else {
		fmt.Println("constraints: all satisfied")
	}
	if *verbose {
		names := res.Placement.Names()
		sort.Strings(names)
		for _, n := range names {
			r := res.Placement[n]
			fmt.Printf("  %-8s x=%-6d y=%-6d w=%-5d h=%-5d\n", n, r.X, r.Y, r.W, r.H)
		}
	}
	if *svgPath != "" {
		f, err := os.Create(*svgPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "analogplace:", err)
			os.Exit(1)
		}
		defer f.Close()
		if err := render.SVG(f, res.Placement, render.Options{}); err != nil {
			fmt.Fprintln(os.Stderr, "analogplace:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *svgPath)
	}
}

func pickBench(name string) (*circuits.Bench, error) {
	switch name {
	case "miller":
		return circuits.MillerOpAmp(), nil
	case "folded":
		return circuits.FoldedCascode(), nil
	}
	return circuits.TableIBench(name)
}

func pickMethod(name string) (core.Method, error) {
	switch name {
	case "seqpair":
		return core.MethodSeqPair, nil
	case "bstar":
		return core.MethodBStar, nil
	case "hbstar":
		return core.MethodHBStar, nil
	case "slicing":
		return core.MethodSlicing, nil
	case "absolute":
		return core.MethodAbsolute, nil
	case "tcg":
		return core.MethodTCG, nil
	case "esf":
		return core.MethodDeterministicESF, nil
	case "rsf":
		return core.MethodDeterministicRSF, nil
	}
	return 0, fmt.Errorf("unknown method %q", name)
}
