// Command analogplace places a benchmark circuit with a selectable
// algorithm from the placer registry and prints the resulting layout
// statistics, per-term cost breakdown and module coordinates.
//
// Usage:
//
//	analogplace [-method seqpair|bstar|hbstar|tcg|slicing|absolute|portfolio|esf|rsf]
//	            [-bench miller|folded|<table1-name>] [-seed N]
//	            [-workers N] [-outline WxH] [-outline-weight W]
//	            [-thermal W] [-prox W] [-wire W] [-area W] [-v]
//	            [-json FILE] [-json-out FILE] [-json-req FILE]
//	            [-algorithms]
//
// -algorithms lists the placer registry — every valid -method value
// with its kind (flat/hierarchical) and portfolio eligibility — and
// exits; the daemon serves the same listing on GET /v1/algorithms.
// The CLI performs no algorithm dispatch of its own: the wire path
// (-json/-json-out) runs any registered algorithm through
// placer.Solve, so a backend registered with placer.Register is
// immediately placeable here; the classic path is limited to the
// paper's built-in methods (it drives internal/core's ablation
// harness) and points registry-only algorithms at -json-out.
//
// -workers above 1 runs parallel multi-start annealing: that many
// independent chains on separate cores, keeping the best placement.
//
// The objective flags tune the composable cost model: -outline adds a
// fixed-outline penalty (the result reports whether the bounding box
// respects it, or the violation penalty), -thermal adds thermal
// mismatch over symmetry pairs, -prox pulls proximity groups together,
// and -wire/-area reweight the default terms.
//
// # Wire-format mode
//
// The CLI speaks the same canonical JSON wire format as the placed
// daemon (internal/wire). -json FILE (or "-" for stdin) reads a wire
// Problem or Request instead of -bench and solves it through the
// identical service path; -json-out FILE (or "-" for stdout) writes
// the wire Result; -json-req FILE emits the assembled Request itself
// (canonically encoded, without solving), so
//
//	analogplace -bench miller -method seqpair -json-req - | curl -s \
//	  -X POST --data-binary @- 'localhost:8080/v1/place?wait=1'
//
// and the local `analogplace -bench miller -method seqpair -json-out -`
// produce the same placement for the same request. -json-out with a
// benchmark runs the wire path too (method portfolio races
// seqpair/bstar/tcg); the deterministic esf/rsf methods have no wire
// representation and reject the -json* flags.
//
// One deliberate difference from the classic path: classic runs keep
// the paper's ablation semantics and strip symmetry groups from the
// problem for the non-seqpair flat methods (so bstar/tcg/slicing/
// absolute are the unconstrained baselines of the paper, and -thermal
// has no pairs to act on), while the wire path keeps every method on
// the identical composite objective — symmetry-pair thermal term
// included — so service results and portfolio racers compare like
// for like.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/hbstar"
	"repro/internal/render"
	"repro/internal/service"
	"repro/internal/wire"
	"repro/placer"
)

func main() {
	err := run(os.Args[1:], os.Stdout, os.Stderr)
	if errors.Is(err, flag.ErrHelp) {
		return // -h printed usage; that is success, not an error
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "analogplace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("analogplace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	method := fs.String("method", "hbstar", "placement method: a placer-registry algorithm (see -algorithms), portfolio, esf or rsf")
	bench := fs.String("bench", "miller", "benchmark: miller, folded, or a Table I name (miller_v2, comparator_v2, folded_casc, buffer, biasynth, lnamixbias)")
	seed := fs.Int64("seed", 1, "random seed for stochastic methods")
	workers := fs.Int("workers", 1, "parallel multi-start annealing chains (1 = serial)")
	temperChains := fs.Int("temper-chains", 0, "parallel-tempering replica chains on a temperature ladder (0 = off; takes precedence over -workers)")
	exchangeEvery := fs.Int("exchange-every", 0, "stages between replica-exchange sweeps (0 with -temper-chains = independent multi-start)")
	outline := fs.String("outline", "", "fixed outline as WxH (e.g. 400x300); adds a quadratic excess penalty")
	outlineWeight := fs.Float64("outline-weight", 0, "fixed-outline penalty weight (0 = heuristic default)")
	thermalWeight := fs.Float64("thermal", 0, "thermal-mismatch weight over symmetry pairs (0 = off)")
	thermalSigma := fs.Float64("thermal-sigma", 0, "thermal decay length (0 = default 50)")
	proxWeight := fs.Float64("prox", 0, "proximity-group pull weight for flat placers (0 = off)")
	wireWeight := fs.Float64("wire", 0, "HPWL weight (0 = method default)")
	areaWeight := fs.Float64("area", 0, "bounding-box area weight (0 = default 1)")
	verbose := fs.Bool("v", false, "print module coordinates")
	svgPath := fs.String("svg", "", "write the placement as SVG to this file")
	jsonIn := fs.String("json", "", "read a wire-format Problem or Request from this file ('-' = stdin) instead of -bench")
	jsonOut := fs.String("json-out", "", "write the wire-format Result to this file ('-' = stdout)")
	jsonReq := fs.String("json-req", "", "write the assembled wire-format Request to this file ('-' = stdout) without solving; POST it to placed verbatim")
	traceOut := fs.String("trace-out", "", "record the solve's flight telemetry and write it as wire trace JSON to this file ('-' = stdout); feed it to placetrace for a chart")
	algorithms := fs.Bool("algorithms", false, "list the placer algorithm registry and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *algorithms {
		printAlgorithms(stdout)
		return nil
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (all inputs are flags)", fs.Arg(0))
	}
	set := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { set[f.Name] = true })

	if *workers < 1 {
		return fmt.Errorf("-workers must be at least 1 (got %d)", *workers)
	}
	if *temperChains < 0 || *exchangeEvery < 0 {
		return fmt.Errorf("-temper-chains and -exchange-every must be non-negative")
	}
	for name, v := range map[string]float64{
		"-outline-weight": *outlineWeight, "-thermal": *thermalWeight,
		"-thermal-sigma": *thermalSigma, "-prox": *proxWeight,
		"-wire": *wireWeight, "-area": *areaWeight,
	} {
		if v < 0 {
			return fmt.Errorf("%s must be non-negative (got %v)", name, v)
		}
	}
	if set["json"] && set["bench"] {
		return fmt.Errorf("-json and -bench both name a problem; pass one")
	}

	var outlineW, outlineH int
	if *outline != "" {
		// Sscanf alone accepts trailing garbage ("400x300junk"); the
		// %s probe must find nothing after the pair.
		var trailing string
		n, _ := fmt.Sscanf(*outline, "%dx%d%s", &outlineW, &outlineH, &trailing)
		if n != 2 || outlineW <= 0 || outlineH <= 0 {
			return fmt.Errorf("bad -outline %q (want WxH, e.g. 400x300)", *outline)
		}
	}

	// esf/rsf are deterministic Section IV methods with no wire
	// representation: always the classic path, never -json.
	classicOnly := *method == "esf" || *method == "rsf"
	wireMode := set["json"] || set["json-out"] || set["json-req"] || set["trace-out"]
	if classicOnly && wireMode {
		return fmt.Errorf("method %q is deterministic and has no wire representation; drop -json/-json-out/-json-req/-trace-out", *method)
	}
	if set["json-req"] && (set["json-out"] || set["svg"] || set["trace-out"]) {
		return fmt.Errorf("-json-req emits the request without solving; it conflicts with -json-out/-svg/-trace-out")
	}
	for name, v := range map[string]string{"json": *jsonIn, "json-out": *jsonOut, "json-req": *jsonReq, "trace-out": *traceOut} {
		if set[name] && v == "" {
			return fmt.Errorf("-%s needs a file path ('-' for stdin/stdout)", name)
		}
	}
	if *jsonOut == "-" && *traceOut == "-" {
		return fmt.Errorf("-json-out and -trace-out cannot both write to stdout")
	}

	if wireMode {
		return runWire(wireArgs{
			method: *method, methodSet: set["method"],
			seed: *seed, seedSet: set["seed"],
			workers: *workers, workersSet: set["workers"],
			temperChains: *temperChains, temperChainsSet: set["temper-chains"],
			exchangeEvery: *exchangeEvery, exchangeEverySet: set["exchange-every"],
			jsonIn: *jsonIn, jsonOut: *jsonOut, jsonReq: *jsonReq, traceOut: *traceOut,
			objective: wire.Objective{
				AreaWeight:    *areaWeight,
				WireWeight:    *wireWeight,
				OutlineW:      outlineW,
				OutlineH:      outlineH,
				OutlineWeight: *outlineWeight,
				ProxWeight:    *proxWeight,
				ThermalWeight: *thermalWeight,
				ThermalSigma:  *thermalSigma,
			},
			objectiveSet: set["outline"] || set["outline-weight"] || set["thermal"] ||
				set["thermal-sigma"] || set["prox"] || set["wire"] || set["area"],
			bench:   *bench,
			verbose: *verbose, svgPath: *svgPath,
		}, stdout, stderr)
	}

	if *method == "portfolio" {
		return fmt.Errorf("method portfolio needs the wire path: add -json-out (or -json)")
	}
	b, err := pickBench(*bench)
	if err != nil {
		return err
	}
	// The registry (plus core's deterministic esf/rsf) is the only
	// method namespace; the CLI carries no dispatch of its own. The
	// classic path runs core's paper-ablation harness, so it only
	// knows the built-in methods — registered-but-not-built-in
	// algorithms run through the wire path.
	m, err := core.ParseMethod(*method)
	if err != nil {
		if placer.Known(*method) {
			return fmt.Errorf("method %q is registry-only and needs the wire path: add -json-out (or -json)", *method)
		}
		return err
	}
	obj := &core.Objective{
		AreaWeight:    *areaWeight,
		WireWeight:    *wireWeight,
		OutlineW:      outlineW,
		OutlineH:      outlineH,
		OutlineWeight: *outlineWeight,
		ProxWeight:    *proxWeight,
		ThermalWeight: *thermalWeight,
		ThermalSigma:  *thermalSigma,
	}
	opt := anneal.Options{
		Seed:          *seed,
		MovesPerStage: wire.DefaultMovesPerStage,
		MaxStages:     wire.DefaultMaxStages,
		StallStages:   wire.DefaultStallStages,
		Workers:       *workers,
		TemperChains:  *temperChains,
		ExchangeEvery: *exchangeEvery,
	}
	res, err := core.PlaceBenchObjective(b, m, opt, obj)
	if err != nil {
		return err
	}
	bb := res.Placement.BBox()
	fmt.Fprintf(stdout, "bench=%s method=%v modules=%d\n", b.Name, m, len(res.Placement))
	fmt.Fprintf(stdout, "bounding box: %dx%d  area usage: %.2f%%  legal: %v  runtime: %s\n",
		bb.W, bb.H, 100*res.AreaUsage, res.Legal, res.Runtime.Round(1e6))
	printTermBreakdown(stdout, res.Breakdown)
	if o := res.Outline; o != nil {
		if o.Fits() {
			fmt.Fprintf(stdout, "outline %dx%d: bounding box fits\n", o.W, o.H)
		} else {
			fmt.Fprintf(stdout, "outline %dx%d: violated by %dx%d, penalty %.4g\n",
				o.W, o.H, o.ExcessW, o.ExcessH, o.Penalty)
		}
	}
	printViolations(stdout, stringifyErrs(res.Violations))
	if *verbose {
		printCoords(stdout, res.Placement)
	}
	if *svgPath != "" {
		if err := writeSVG(*svgPath, res.Placement); err != nil {
			return err
		}
		fmt.Fprintln(stdout, "wrote", *svgPath)
	}
	return nil
}

// printAlgorithms lists the registry: one row per engine plus the
// portfolio meta-method and the classic-only deterministic methods.
func printAlgorithms(w io.Writer) {
	fmt.Fprintf(w, "%-16s %-13s %-10s %s\n", "ALGORITHM", "KIND", "PORTFOLIO", "DESCRIPTION")
	for _, v := range service.AlgorithmViews() {
		eligible := "-"
		if v.Portfolio {
			eligible = "yes"
		}
		if v.Kind == "portfolio" {
			eligible = ""
		}
		fmt.Fprintf(w, "%-16s %-13s %-10s %s\n", v.Name, v.Kind, eligible, v.Description)
	}
	fmt.Fprintf(w, "%-16s %-13s %-10s %s\n", "esf", "deterministic", "-", "Section IV enumeration with enhanced shape functions (classic path only)")
	fmt.Fprintf(w, "%-16s %-13s %-10s %s\n", "rsf", "deterministic", "-", "Section IV enumeration with regular shape functions (classic path only)")
}

// wireArgs carries the flag state into the wire-format path.
type wireArgs struct {
	method           string
	methodSet        bool
	seed             int64
	seedSet          bool
	workers          int
	workersSet       bool
	temperChains     int
	temperChainsSet  bool
	exchangeEvery    int
	exchangeEverySet bool
	jsonIn           string
	jsonOut          string
	jsonReq          string
	traceOut         string
	objective        wire.Objective
	objectiveSet     bool
	bench            string
	verbose          bool
	svgPath          string
}

// runWire is the CLI end of the wire format: assemble a wire.Request
// from a JSON file or a benchmark, solve it through the same
// service.Solve path the placed daemon uses, and report.
func runWire(a wireArgs, stdout, stderr io.Writer) error {
	var req *wire.Request
	fromFile := a.jsonIn != ""
	if fromFile {
		if a.objectiveSet {
			return fmt.Errorf("objective flags conflict with -json: the wire problem carries its own objective")
		}
		data, err := readInput(a.jsonIn)
		if err != nil {
			return err
		}
		req, err = decodeProblemOrRequest(data)
		if err != nil {
			return err
		}
	} else {
		b, err := pickBench(a.bench)
		if err != nil {
			return err
		}
		p, err := wire.FromBench(b)
		if err != nil {
			return err
		}
		if a.objectiveSet {
			applyObjectiveFlags(&p.Objective, a.objective)
		}
		if a.method == "hbstar" && a.objective.WireWeight == 0 {
			// Parity with the classic path: hbstar's historical default
			// wire weight, not the flat placers' 1.0 FromBench encodes.
			p.Objective.WireWeight = hbstar.DefaultWireWeight
		}
		req = &wire.Request{Problem: *p}
	}
	// A file request solves exactly as the daemon would solve the same
	// bytes — CLI flags only override it when explicitly set. A
	// benchmark run keeps the classic CLI defaults (method hbstar,
	// seed 1, the historical schedule).
	if a.methodSet || !fromFile {
		if !wire.KnownMethod(a.method) {
			return placer.ErrUnknownAlgorithm(a.method)
		}
		req.Options.Method = a.method
	}
	if a.seedSet || !fromFile {
		req.Options.Seed = a.seed
	}
	if a.workersSet {
		req.Options.Workers = a.workers
	}
	if a.temperChainsSet {
		req.Options.TemperChains = a.temperChains
	}
	if a.exchangeEverySet {
		req.Options.ExchangeEvery = a.exchangeEvery
	}
	if !fromFile {
		req.Options.MovesPerStage = wire.DefaultMovesPerStage
		req.Options.MaxStages = wire.DefaultMaxStages
		req.Options.StallStages = wire.DefaultStallStages
	}
	if err := req.Validate(); err != nil {
		return err
	}

	if a.jsonReq != "" {
		// Emit the request itself — normalized like the canonical
		// encoding, but with timeout_ms preserved (Canonical strips it
		// for hashing only) — and stop before solving. req is ours to
		// normalize in place.
		req.Problem.Normalize()
		req.Options.Normalize()
		enc, err := json.Marshal(req)
		if err != nil {
			return err
		}
		return writeOutput(a.jsonReq, append(enc, '\n'), stdout)
	}

	// Solve honors the request's own timeout_ms, same as the daemon.
	// -trace-out rides as an extra placer option, exactly how the
	// scheduler attaches its per-job recorder.
	var extra []placer.Option
	if a.traceOut != "" {
		extra = append(extra, placer.WithTrace(0))
	}
	res, err := service.Solve(context.Background(), req, nil, extra...)
	if err != nil {
		return err
	}

	humanOut := stdout
	if a.jsonOut == "-" || a.traceOut == "-" {
		humanOut = stderr // keep stdout pure JSON for piping
	}
	name := res.Name
	if name == "" {
		name = "wire"
	}
	fmt.Fprintf(humanOut, "bench=%s method=%s modules=%d\n", name, res.Method, len(res.Placement))
	fmt.Fprintf(humanOut, "bounding box: %dx%d  area usage: %.2f%%  legal: %v  cost: %.4g  runtime: %dms\n",
		res.BBoxW, res.BBoxH, 100*res.AreaUsage, res.Legal, res.Cost, res.RuntimeMS)
	printWireBreakdown(humanOut, res.Breakdown)
	if res.Cancelled {
		fmt.Fprintln(humanOut, "run cancelled: placement is best-so-far")
	}
	printViolations(humanOut, res.Violations)
	pl := placementOf(res)
	if a.verbose {
		printCoords(humanOut, pl)
	}
	if a.jsonOut != "" {
		enc, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := writeOutput(a.jsonOut, append(enc, '\n'), stdout); err != nil {
			return err
		}
		if a.jsonOut != "-" {
			fmt.Fprintln(humanOut, "wrote", a.jsonOut)
		}
	}
	if a.traceOut != "" {
		if res.Trace == nil {
			return fmt.Errorf("solve recorded no trace (external engines do not record)")
		}
		enc, err := json.MarshalIndent(res.Trace, "", "  ")
		if err != nil {
			return err
		}
		if err := writeOutput(a.traceOut, append(enc, '\n'), stdout); err != nil {
			return err
		}
		if a.traceOut != "-" {
			fmt.Fprintf(humanOut, "wrote %s (%d trace events)\n", a.traceOut, len(res.Trace.Events))
		}
	}
	if a.svgPath != "" {
		if err := writeSVG(a.svgPath, pl); err != nil {
			return err
		}
		fmt.Fprintln(humanOut, "wrote", a.svgPath)
	}
	return nil
}

// printTermBreakdown reports a classic-path cost decomposition: each
// term's weighted contribution, weights spelled out.
func printTermBreakdown(w io.Writer, terms []cost.TermValue) {
	if len(terms) == 0 {
		return
	}
	parts := make([]string, len(terms))
	for i, tv := range terms {
		parts[i] = fmt.Sprintf("%s=%.4g", tv.Name, tv.Weight*tv.Value)
	}
	fmt.Fprintf(w, "cost breakdown: %s\n", strings.Join(parts, "  "))
}

// printWireBreakdown reports a wire result's named per-term fields
// (weighted contributions; they sum to the result cost).
func printWireBreakdown(w io.Writer, bd *wire.Breakdown) {
	if bd == nil {
		return
	}
	var parts []string
	for _, f := range []struct {
		name string
		v    float64
	}{
		{"area", bd.Area}, {"hpwl", bd.HPWL}, {"outline", bd.Outline},
		{"proximity", bd.Proximity}, {"thermal", bd.Thermal},
		{"overlap", bd.Overlap}, {"fragments", bd.Fragments},
	} {
		if f.v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%.4g", f.name, f.v))
		}
	}
	if len(parts) > 0 {
		fmt.Fprintf(w, "cost breakdown: %s\n", strings.Join(parts, "  "))
	}
}

// decodeProblemOrRequest accepts either a bare wire Problem or a full
// Request.
func decodeProblemOrRequest(data []byte) (*wire.Request, error) {
	req, reqErr := wire.DecodeRequest(data)
	if reqErr == nil {
		return req, nil
	}
	p, probErr := wire.DecodeProblem(data)
	if probErr == nil {
		return &wire.Request{Problem: *p}, nil
	}
	return nil, fmt.Errorf("input is neither a wire Request (%v) nor a Problem (%v)", reqErr, probErr)
}

func readInput(path string) ([]byte, error) {
	if path == "-" {
		return io.ReadAll(os.Stdin)
	}
	return os.ReadFile(path)
}

// applyObjectiveFlags overlays explicitly-set CLI weights on a
// benchmark-derived objective (zero flag values leave the benchmark's
// defaults alone, matching the classic path's semantics).
func applyObjectiveFlags(dst *wire.Objective, flags wire.Objective) {
	if flags.AreaWeight > 0 {
		dst.AreaWeight = flags.AreaWeight
	}
	if flags.WireWeight > 0 {
		dst.WireWeight = flags.WireWeight
	}
	if flags.OutlineW > 0 && flags.OutlineH > 0 {
		dst.OutlineW, dst.OutlineH = flags.OutlineW, flags.OutlineH
		dst.OutlineWeight = flags.OutlineWeight
	}
	if flags.ProxWeight > 0 {
		dst.ProxWeight = flags.ProxWeight
	}
	if flags.ThermalWeight > 0 {
		dst.ThermalWeight = flags.ThermalWeight
		dst.ThermalSigma = flags.ThermalSigma
	}
}

func placementOf(res *wire.Result) geom.Placement {
	pl := geom.Placement{}
	for _, m := range res.Placement {
		pl[m.Name] = geom.NewRect(m.X, m.Y, m.W, m.H)
	}
	return pl
}

func sortedNames(pl geom.Placement) []string {
	names := pl.Names()
	sort.Strings(names)
	return names
}

func printCoords(w io.Writer, pl geom.Placement) {
	for _, n := range sortedNames(pl) {
		r := pl[n]
		fmt.Fprintf(w, "  %-8s x=%-6d y=%-6d w=%-5d h=%-5d\n", n, r.X, r.Y, r.W, r.H)
	}
}

func printViolations(w io.Writer, vs []string) {
	if len(vs) > 0 {
		fmt.Fprintln(w, "constraint violations:")
		for _, v := range vs {
			fmt.Fprintln(w, "  -", v)
		}
	} else {
		fmt.Fprintln(w, "constraints: all satisfied")
	}
}

// writeOutput writes data to path, with "-" meaning the given stream.
func writeOutput(path string, data []byte, stdout io.Writer) error {
	if path == "-" {
		_, err := stdout.Write(data)
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

func stringifyErrs(errs []error) []string {
	out := make([]string, len(errs))
	for i, e := range errs {
		out[i] = e.Error()
	}
	return out
}

func writeSVG(path string, pl geom.Placement) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return render.SVG(f, pl, render.Options{})
}

func pickBench(name string) (*circuits.Bench, error) {
	switch name {
	case "miller":
		return circuits.MillerOpAmp(), nil
	case "folded":
		return circuits.FoldedCascode(), nil
	}
	return circuits.TableIBench(name)
}
