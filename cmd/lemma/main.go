// Command lemma reports the Section II search-space reduction: the
// number of symmetric-feasible sequence-pairs versus all sequence-
// pairs for the paper's running example (n = 7, one symmetry group
// with two pairs and two self-symmetric cells), verifying the Lemma's
// bound by exact enumeration.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	n, groups := core.PaperLemmaExample()
	rep, err := core.RunLemma(n, groups, true)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lemma:", err)
		os.Exit(1)
	}
	fmt.Printf("n = %d cells, %d symmetry group(s)\n", rep.N, len(rep.Groups))
	fmt.Printf("total sequence-pairs (n!)^2 : %v\n", rep.Total)
	fmt.Printf("Lemma bound on S-F codes    : %v\n", rep.Bound)
	if rep.Enumerated {
		fmt.Printf("exact S-F count (enumerated): %d\n", rep.Exact)
	}
	fmt.Printf("search-space reduction      : %.2f%% (paper: 99.86%%)\n", 100*rep.Reduction)
}
