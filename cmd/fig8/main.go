// Command fig8 prints the ESF and RSF shape-function staircases of a
// Table I benchmark (Fig. 8 of the paper plots lnamixbias), one
// "w h" pair per line, in a form ready for plotting.
//
// Usage:
//
//	fig8 [circuit]
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	name := "lnamixbias"
	if len(os.Args) > 1 {
		name = os.Args[1]
	}
	esf, rsf, err := core.RunFig8(name)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig8:", err)
		os.Exit(1)
	}
	fmt.Printf("# %s shape functions (w h)\n", name)
	fmt.Println("# ESF")
	for _, s := range esf {
		fmt.Printf("%d %d\n", s[0], s[1])
	}
	fmt.Println("# RSF")
	for _, s := range rsf {
		fmt.Printf("%d %d\n", s[0], s[1])
	}
}
