// Command fig10 runs the layout-aware sizing experiment of Fig. 10:
// a nominal (schematic-only) sizing of a fully-differential
// folded-cascode OTA against a layout-aware sizing of the same circuit
// and specification, reporting layout geometry and spec compliance
// before and after parasitic extraction.
package main

import (
	"fmt"
	"os"

	"repro/internal/anneal"
	"repro/internal/core"
	"repro/internal/sizing"
)

func main() {
	res, err := core.RunFig10(anneal.Options{
		Seed: 1, MovesPerStage: 250, MaxStages: 250, StallStages: 60,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fig10:", err)
		os.Exit(1)
	}
	report("(a) nominal sizing (no geometric or parasitic considerations)", res.Nominal)
	report("(b) layout-aware sizing", res.Aware)
	fmt.Printf("area ratio (a)/(b): %.2fx (paper: 1.92x)\n",
		res.Nominal.Layout.Area()/res.Aware.Layout.Area())
	fmt.Printf("extraction share of layout-aware runtime: %.1f%% (paper: 17%%)\n",
		100*res.Aware.ExtractFraction)
}

func report(title string, r *sizing.Result) {
	fmt.Println(title)
	fmt.Printf("  layout: %.1f x %.1f um (area %.0f um^2, aspect %.2f)\n",
		r.Layout.WidthUM, r.Layout.HeightUM, r.Layout.Area(), r.Layout.AspectRatio())
	fmt.Printf("  sized view : gain %.1f dB, GBW %.3g Hz, PM %.1f deg, SR %.3g V/s, power %.3g W\n",
		r.Pre.GainDB, r.Pre.GBW, r.Pre.PM, r.Pre.SR, r.Pre.Power)
	fmt.Printf("  post-layout: gain %.1f dB, GBW %.3g Hz, PM %.1f deg, SR %.3g V/s\n",
		r.Post.GainDB, r.Post.GBW, r.Post.PM, r.Post.SR)
	if len(r.ViolationsPost) == 0 {
		fmt.Println("  specs after extraction: ALL MET")
	} else {
		fmt.Println("  specs after extraction: VIOLATED")
		for _, v := range r.ViolationsPost {
			fmt.Println("   -", v)
		}
	}
	fmt.Println()
}
