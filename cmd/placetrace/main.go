// Command placetrace renders a solve's flight recording as an SVG
// chart: per-rung cost trajectories and acceptance rates by annealing
// stage, with replica-exchange attempts marked where they happened.
//
// Usage:
//
//	placetrace [-in trace.json] [-out trace.svg]
//
// The input is wire trace JSON — what GET /v1/jobs/{id}/trace serves,
// what `analogplace -trace-out` writes, or a whole wire Result whose
// `trace` field is then used. '-' reads stdin / writes stdout.
//
//	analogplace -bench miller -method seqpair -temper-chains 4 \
//	  -exchange-every 2 -trace-out - | placetrace -in - -out miller.svg
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/render"
	"repro/internal/wire"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "placetrace:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("placetrace", flag.ContinueOnError)
	fs.SetOutput(stderr)
	in := fs.String("in", "-", "trace JSON input: a wire Trace or a wire Result carrying one ('-' = stdin)")
	out := fs.String("out", "trace.svg", "SVG output path ('-' = stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected argument %q (all inputs are flags)", fs.Arg(0))
	}

	var data []byte
	var err error
	if *in == "-" {
		data, err = io.ReadAll(os.Stdin)
	} else {
		data, err = os.ReadFile(*in)
	}
	if err != nil {
		return err
	}
	tr, err := decodeTrace(data)
	if err != nil {
		return err
	}
	if err := tr.Validate(); err != nil {
		return err
	}

	var w io.Writer
	var f *os.File
	if *out == "-" {
		w = stdout
	} else {
		f, err = os.Create(*out)
		if err != nil {
			return err
		}
		w = f
	}
	if err := render.ChartSVG(w, tr); err != nil {
		if f != nil {
			f.Close()
		}
		return err
	}
	if f != nil {
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Fprintf(stderr, "placetrace: wrote %s (%d events, method %s)\n", *out, len(tr.Events), tr.Method)
	}
	return nil
}

// decodeTrace accepts either a bare wire.Trace or a wire.Result whose
// trace field carries one, so daemon job bodies pipe straight in.
func decodeTrace(data []byte) (*wire.Trace, error) {
	var tr wire.Trace
	if err := json.Unmarshal(data, &tr); err != nil {
		return nil, fmt.Errorf("not trace JSON: %w", err)
	}
	if len(tr.Events) > 0 {
		return &tr, nil
	}
	var res wire.Result
	if err := json.Unmarshal(data, &res); err == nil && res.Trace != nil && len(res.Trace.Events) > 0 {
		return res.Trace, nil
	}
	return nil, fmt.Errorf("input carries no trace events (was the solve run with tracing enabled?)")
}
