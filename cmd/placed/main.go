// Command placed is the placement daemon: analog placement as a
// service over HTTP, backed by the job scheduler and the canonical
// wire format of internal/service and internal/wire.
//
// Usage:
//
//	placed [-addr :8080] [-solvers N] [-queue N] [-cache N]
//
// Endpoints:
//
//	POST   /v1/place      submit a wire.Request (JSON). Returns 202
//	                      with a job id; ?wait=1 blocks and returns
//	                      the finished job. Identical requests are
//	                      answered from the content-addressed result
//	                      cache, or coalesced onto the in-flight job.
//	GET    /v1/algorithms the placer registry: every valid algorithm
//	                      string with its kind (flat/hierarchical)
//	                      and portfolio eligibility.
//	GET    /v1/jobs/{id}  job state, live progress (best cost, stage,
//	                      moves/sec) and, once terminal, the result.
//	DELETE /v1/jobs/{id}  cancel: the job stops at the next annealing
//	                      stage boundary and keeps its best-so-far
//	                      placement, flagged as cancelled.
//	GET    /healthz       liveness probe.
//	GET    /metrics       Prometheus text metrics (jobs by state,
//	                      queue/running gauges, cache hit/miss,
//	                      solve-latency histogram, worker crash and
//	                      restart counters, checkpoint and load-shed
//	                      gauges).
//
// Fault tolerance: a full queue sheds load with 429 plus a Retry-After
// computed from the backlog; a deep queue shortens annealing schedules
// (results marked "degraded", never cached); interrupted jobs leave a
// checkpoint so identical resubmissions resume annealing warm; worker
// panics are supervised — the job retries or quarantines, the worker
// slot restarts with backoff. For chaos testing, PLACED_FAULTPOINTS
// (e.g. "scheduler/worker-panic=0.1,solve/slow=0.05") arms failpoints
// with per-evaluation probabilities and PLACED_FAULT_SEED makes the
// firing sequence deterministic; see internal/fault.
//
// Try it:
//
//	placed -addr :8080 &
//	analogplace -bench miller -method seqpair -json-req - | \
//	  curl -s -X POST --data-binary @- 'localhost:8080/v1/place?wait=1'
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/service"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	solvers := flag.Int("solvers", 2, "solver worker pool size (concurrent jobs)")
	queue := flag.Int("queue", 64, "queued-job bound; beyond it POST sheds load with 429 + Retry-After")
	cache := flag.Int("cache", 128, "result cache entries (0 disables caching)")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "placed: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *solvers < 1 || *queue < 1 {
		fmt.Fprintln(os.Stderr, "placed: -solvers and -queue must be at least 1")
		os.Exit(2)
	}

	armed, err := fault.EnableFromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: %s: %v\n", fault.EnvVar, err)
		os.Exit(2)
	}
	if len(armed) > 0 {
		log.Printf("placed: CHAOS MODE — failpoints armed: %v", armed)
	}

	cacheSize := *cache
	if cacheSize <= 0 {
		cacheSize = -1 // flag 0 means off; Config 0 would mean the default
	}
	sched := service.New(service.Config{Workers: *solvers, QueueDepth: *queue, CacheSize: cacheSize})
	srv := &http.Server{Addr: *addr, Handler: service.NewHandler(sched)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	log.Printf("placed: listening on %s (solvers=%d queue=%d cache=%d)", *addr, *solvers, *queue, *cache)

	select {
	case sig := <-stop:
		log.Printf("placed: %v, shutting down", sig)
		// Close the scheduler first: it cancels running jobs, which
		// unblocks ?wait=1 handlers with best-so-far results, so
		// Shutdown can actually drain them inside its window.
		sched.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("placed: shutdown: %v", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("placed: %v", err)
		}
	}
}
