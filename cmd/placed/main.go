// Command placed is the placement daemon: analog placement as a
// service over HTTP, backed by the job scheduler and the canonical
// wire format of internal/service and internal/wire.
//
// Usage:
//
//	placed [-addr :8080] [-solvers N] [-queue N] [-cache N]
//	       [-trace-events N] [-log-level info] [-store-dir DIR]
//	       [-instance NAME] [-tenant-rate R] [-tenant-burst N]
//	       [-obs] [-pprof]
//
// Endpoints:
//
//	POST   /v1/place            submit a wire.Request (JSON). Returns 202
//	                            with a job id; ?wait=1 blocks and returns
//	                            the finished job. Identical requests are
//	                            answered from the content-addressed result
//	                            cache, or coalesced onto the in-flight job.
//	POST   /v1/place:batch      submit a wire.BatchRequest ({"items": [...]}):
//	                            decoded and validated as one unit, fanned
//	                            into jobs with identical items coalesced
//	                            onto a single solve; ?wait=1 blocks until
//	                            every item is terminal.
//	GET    /v1/algorithms       the placer registry: every valid algorithm
//	                            string with its kind (flat/hierarchical)
//	                            and portfolio eligibility.
//	GET    /v1/jobs/{id}        job state, live progress (best cost, stage,
//	                            moves/sec) and, once terminal, the result.
//	                            With "Accept: text/event-stream": a live
//	                            SSE feed — flight-recorder events straight
//	                            from the solve's ring, progress snapshots,
//	                            and a final "done" event.
//	GET    /v1/jobs/{id}/trace  the solve's flight recording: per-stage
//	                            annealing telemetry, replica exchanges,
//	                            checkpoint and failpoint events (409 until
//	                            the job is terminal; feed it to placetrace
//	                            for an SVG chart).
//	DELETE /v1/jobs/{id}        cancel: the job stops at the next annealing
//	                            stage boundary and keeps its best-so-far
//	                            placement, flagged as cancelled.
//	GET    /healthz             liveness probe.
//	GET    /metrics             Prometheus text metrics (jobs by state,
//	                            queue-depth and latency-EWMA gauges, cache
//	                            hit/miss, solve-latency histogram, worker
//	                            crash/restart and checkpoint counters).
//	GET    /debug/spans         with -obs: the span ring as JSON — timed
//	                            request → job → engine → anneal → stage
//	                            tree of recent solves.
//	GET    /debug/pprof/        with -pprof: the standard Go profiler.
//
// Observability: every solve carries a flight recorder (-trace-events
// sizes it; negative disables) whose recording is deterministic for a
// fixed seed and never perturbs the search. -obs additionally arms the
// span tracer, which timestamps the request/job/engine/anneal/stage
// hierarchy into a process-wide ring at nanosecond resolution; it is
// off by default so the annealing hot loop pays exactly one atomic
// load per stage.
//
// Fault tolerance: a full queue sheds load with 429 plus a Retry-After
// computed from the backlog; a deep queue shortens annealing schedules
// (results marked "degraded", never cached); interrupted jobs leave a
// checkpoint so identical resubmissions resume annealing warm; worker
// panics are supervised — the job retries or quarantines, the worker
// slot restarts with backoff. For chaos testing, PLACED_FAULTPOINTS
// (e.g. "scheduler/worker-panic=0.1,solve/slow=0.05") arms failpoints
// with per-evaluation probabilities and PLACED_FAULT_SEED makes the
// firing sequence deterministic; see internal/fault.
//
// Fleet: -store-dir backs the result cache and job records with
// file-backed stores under DIR (results/ and jobs/), so instances
// sharing the directory share solves — one daemon's result is the
// next one's cache hit, and job records survive restarts. -instance
// prefixes job ids so instances never collide (defaults to host-pid
// when -store-dir is set). -tenant-rate/-tenant-burst arm per-tenant
// token-bucket admission: the X-API-Key header names the tenant,
// over-quota submissions get 429 + Retry-After, and queued work is
// dequeued weighted-fair across tenants. See internal/store and
// internal/service.
//
// Try it:
//
//	placed -addr :8080 &
//	analogplace -bench miller -method seqpair -json-req - | \
//	  curl -s -X POST --data-binary @- 'localhost:8080/v1/place?wait=1'
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/service"
	"repro/internal/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	solvers := flag.Int("solvers", 2, "solver worker pool size (concurrent jobs)")
	queue := flag.Int("queue", 64, "queued-job bound; beyond it POST sheds load with 429 + Retry-After")
	cache := flag.Int("cache", 128, "result cache entries (0 disables caching)")
	traceEvents := flag.Int("trace-events", 0, "per-job flight-recorder capacity in events (0 = default 2048, negative disables tracing)")
	logLevel := flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	storeDir := flag.String("store-dir", "", "back the result cache and job records with file stores under this directory (shared between instances)")
	instance := flag.String("instance", "", "job-id prefix distinguishing instances on a shared -store-dir (default host-pid when -store-dir is set)")
	tenantRate := flag.Float64("tenant-rate", 0, "per-tenant admission quota in solves/second (X-API-Key names the tenant; 0 disables quotas)")
	tenantBurst := flag.Int("tenant-burst", 10, "per-tenant token-bucket burst when -tenant-rate is set")
	obsOn := flag.Bool("obs", false, "arm the span tracer and serve /debug/spans")
	pprofOn := flag.Bool("pprof", false, "serve the Go profiler under /debug/pprof/")
	flag.Parse()
	var level slog.Level
	if err := level.UnmarshalText([]byte(*logLevel)); err != nil {
		fmt.Fprintf(os.Stderr, "placed: -log-level %q: want debug, info, warn or error\n", *logLevel)
		os.Exit(2)
	}
	logger := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: level}))
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "placed: unexpected argument %q\n", flag.Arg(0))
		os.Exit(2)
	}
	if *solvers < 1 || *queue < 1 {
		fmt.Fprintln(os.Stderr, "placed: -solvers and -queue must be at least 1")
		os.Exit(2)
	}

	armed, err := fault.EnableFromEnv()
	if err != nil {
		fmt.Fprintf(os.Stderr, "placed: %s: %v\n", fault.EnvVar, err)
		os.Exit(2)
	}
	if len(armed) > 0 {
		logger.Warn("CHAOS MODE — failpoints armed", "points", armed)
	}
	if *obsOn {
		obs.Enable()
	}

	cacheSize := *cache
	if cacheSize <= 0 {
		cacheSize = -1 // flag 0 means off; Config 0 would mean the default
	}
	cfg := service.Config{
		Workers:     *solvers,
		QueueDepth:  *queue,
		CacheSize:   cacheSize,
		TraceEvents: *traceEvents,
		Instance:    *instance,
		TenantRate:  *tenantRate,
		TenantBurst: *tenantBurst,
	}
	if *storeDir != "" {
		rs, err := store.NewFile(filepath.Join(*storeDir, "results"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "placed: -store-dir: %v\n", err)
			os.Exit(2)
		}
		js, err := store.NewFile(filepath.Join(*storeDir, "jobs"))
		if err != nil {
			fmt.Fprintf(os.Stderr, "placed: -store-dir: %v\n", err)
			os.Exit(2)
		}
		if cacheSize > 0 {
			cfg.Results = store.NewResultCache(rs, 0)
		}
		cfg.Jobs = store.NewJobStore(js, 0)
		if cfg.Instance == "" {
			// Shared stores need distinct job ids per instance; host-pid
			// is unique enough without coordination.
			host, _ := os.Hostname()
			if host == "" {
				host = "placed"
			}
			cfg.Instance = fmt.Sprintf("%s-%d", host, os.Getpid())
		}
		logger.Info("file-backed stores", "dir", *storeDir, "instance", cfg.Instance)
	}
	sched := service.New(cfg)

	mux := http.NewServeMux()
	mux.Handle("/", service.NewHandler(sched))
	if *obsOn {
		mux.HandleFunc("GET /debug/spans", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(obs.Spans())
		})
	}
	if *pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	srv := &http.Server{Addr: *addr, Handler: accessLog(logger, mux)}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	errc := make(chan error, 1)
	go func() { errc <- srv.ListenAndServe() }()
	logger.Info("listening", "addr", *addr, "solvers", *solvers, "queue", *queue,
		"cache", *cache, "trace_events", *traceEvents, "log_level", level.String(),
		"tenant_rate", *tenantRate, "obs", *obsOn, "pprof", *pprofOn)

	select {
	case sig := <-stop:
		logger.Info("shutting down", "signal", sig.String())
		// Close the scheduler first: it cancels running jobs, which
		// unblocks ?wait=1 handlers with best-so-far results, so
		// Shutdown can actually drain them inside its window.
		sched.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			logger.Error("shutdown", "err", err)
		}
	case err := <-errc:
		if !errors.Is(err, http.ErrServerClosed) {
			logger.Error("serve", "err", err)
			os.Exit(1)
		}
	}
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the wrapped writer so SSE job streams keep
// flushing through the access-log wrapper.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// accessLog wraps the API with structured per-request logging: method,
// path, status and wall-clock, through the same slog logger as the
// daemon's lifecycle messages. Successful requests log at debug (a
// load test at 64 clients must not drown the terminal at the default
// info level), client errors at info, server errors at warn.
func accessLog(logger *slog.Logger, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(sw, r)
		level := slog.LevelDebug
		switch {
		case sw.status >= 500:
			level = slog.LevelWarn
		case sw.status >= 400:
			level = slog.LevelInfo
		}
		logger.Log(r.Context(), level, "request", "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur", time.Since(start).Round(time.Microsecond).String())
	})
}
