// Command benchtrend compares two benchjson reports and fails when
// performance regressed: it is the CI gate that turns the checked-in
// BENCH_PR*.json baselines into an enforced trend rather than a
// decorative artifact.
//
// Usage:
//
//	go run ./cmd/benchtrend [-max-regress 0.25] [-filter REGEX] old.json new.json
//
// Benchmarks are matched by name. For every benchmark present in both
// reports, the new ns/op must not exceed old ns/op × (1 + max-regress)
// — the default 25% headroom absorbs machine noise while catching
// order-of-magnitude regressions (an accidentally disabled incremental
// path, a new allocation in the hot loop). A benchmark present in the
// baseline but missing from the new report also fails: silently
// dropping a benchmark is how trends die. New benchmarks absent from
// the baseline pass — that is how the trend grows. -filter restricts
// the comparison to matching names.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
)

// Benchmark mirrors cmd/benchjson's record.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op"`
	AllocsPer  float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report mirrors cmd/benchjson's document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchtrend:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchtrend", flag.ContinueOnError)
	fs.SetOutput(stdout)
	maxRegress := fs.Float64("max-regress", 0.25, "maximum allowed ns/op growth as a fraction (0.25 = +25%)")
	filter := fs.String("filter", "", "only compare benchmarks whose name matches this regexp")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 2 {
		return fmt.Errorf("want two arguments: old.json new.json (got %d)", fs.NArg())
	}
	if *maxRegress < 0 {
		return fmt.Errorf("-max-regress must be non-negative (got %v)", *maxRegress)
	}
	var re *regexp.Regexp
	if *filter != "" {
		var err error
		if re, err = regexp.Compile(*filter); err != nil {
			return fmt.Errorf("bad -filter: %v", err)
		}
	}
	oldRep, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	newRep, err := load(fs.Arg(1))
	if err != nil {
		return err
	}
	fresh := make(map[string]Benchmark, len(newRep.Benchmarks))
	for _, b := range newRep.Benchmarks {
		fresh[b.Name] = b
	}
	var failures []string
	compared := 0
	for _, old := range oldRep.Benchmarks {
		if re != nil && !re.MatchString(old.Name) {
			continue
		}
		nb, ok := fresh[old.Name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: present in baseline, missing from new report", old.Name))
			continue
		}
		compared++
		if old.NsPerOp <= 0 {
			continue // a zero baseline cannot regress meaningfully
		}
		ratio := nb.NsPerOp / old.NsPerOp
		limit := 1 + *maxRegress
		status := "ok"
		if ratio > limit {
			status = "REGRESSED"
			failures = append(failures, fmt.Sprintf("%s: %.0f -> %.0f ns/op (%.2fx > %.2fx allowed)",
				old.Name, old.NsPerOp, nb.NsPerOp, ratio, limit))
		}
		fmt.Fprintf(stdout, "%-60s %12.0f %12.0f  %5.2fx  %s\n", old.Name, old.NsPerOp, nb.NsPerOp, ratio, status)
	}
	if compared == 0 && len(failures) == 0 {
		return fmt.Errorf("no benchmarks compared (empty baseline or over-narrow -filter)")
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(stdout, "FAIL:", f)
		}
		return fmt.Errorf("%d benchmark(s) regressed past the %.0f%% budget", len(failures), *maxRegress*100)
	}
	fmt.Fprintf(stdout, "benchtrend: %d benchmark(s) within the %.0f%% budget\n", compared, *maxRegress*100)
	return nil
}

func load(path string) (*Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		return nil, fmt.Errorf("%s: %v", path, err)
	}
	return &rep, nil
}
