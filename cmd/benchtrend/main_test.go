package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func writeReport(t *testing.T, dir, name string, benches []Benchmark) string {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := json.Marshal(Report{Benchmarks: benches})
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestTrendPassesWithinBudget(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkB", NsPerOp: 500},
	})
	fresh := writeReport(t, dir, "new.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1200}, // +20% < 25%
		{Name: "BenchmarkB", NsPerOp: 400},  // improvement
		{Name: "BenchmarkC", NsPerOp: 9999}, // new benchmark: not gated
	})
	var out strings.Builder
	if err := run([]string{old, fresh}, &out); err != nil {
		t.Fatalf("within-budget comparison failed: %v\n%s", err, out.String())
	}
}

func TestTrendFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000}})
	fresh := writeReport(t, dir, "new.json", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1300}})
	var out strings.Builder
	if err := run([]string{old, fresh}, &out); err == nil {
		t.Fatalf("+30%% regression passed the default 25%% budget:\n%s", out.String())
	}
	if err := run([]string{"-max-regress", "0.5", old, fresh}, &out); err != nil {
		t.Fatalf("+30%% regression failed a 50%% budget: %v", err)
	}
}

func TestTrendFailsOnMissingBenchmark(t *testing.T) {
	dir := t.TempDir()
	old := writeReport(t, dir, "old.json", []Benchmark{
		{Name: "BenchmarkA", NsPerOp: 1000},
		{Name: "BenchmarkGone", NsPerOp: 100},
	})
	fresh := writeReport(t, dir, "new.json", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1000}})
	var out strings.Builder
	if err := run([]string{old, fresh}, &out); err == nil {
		t.Fatal("dropped baseline benchmark passed the gate")
	}
	// Filtered out of scope, the missing benchmark is not gated.
	if err := run([]string{"-filter", "^BenchmarkA$", old, fresh}, &out); err != nil {
		t.Fatalf("filter did not exclude the dropped benchmark: %v", err)
	}
}

func TestTrendRejectsBadInput(t *testing.T) {
	dir := t.TempDir()
	ok := writeReport(t, dir, "ok.json", []Benchmark{{Name: "BenchmarkA", NsPerOp: 1}})
	var out strings.Builder
	if err := run([]string{ok}, &out); err == nil {
		t.Fatal("single argument accepted")
	}
	if err := run([]string{ok, filepath.Join(dir, "absent.json")}, &out); err == nil {
		t.Fatal("missing file accepted")
	}
	empty := writeReport(t, dir, "empty.json", nil)
	if err := run([]string{empty, ok}, &out); err == nil {
		t.Fatal("empty baseline accepted")
	}
}
