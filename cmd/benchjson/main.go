// Command benchjson converts `go test -bench` text output on stdin
// into a JSON benchmark report on stdout, so CI can emit and archive
// machine-readable perf trajectories (BENCH_PR*.json) without extra
// tooling.
//
// Usage:
//
//	go test -run xxx -bench 'SeqPairPackInto|IncrementalDirtyNet' -benchmem . | go run ./cmd/benchjson > BENCH_PR5.json
//
// Each benchmark line becomes one record with ns/op, B/op, allocs/op
// and any custom metrics (e.g. the placers' cost metric). Non-bench
// lines (the PASS trailer, goos/goarch headers) are ignored, so the
// raw `go test` stream pipes straight through.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Benchmark is one benchmark result line.
type Benchmark struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	BPerOp     float64            `json:"b_per_op"`
	AllocsPer  float64            `json:"allocs_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	Goos       string      `json:"goos,omitempty"`
	Goarch     string      `json:"goarch,omitempty"`
	Package    string      `json:"pkg,omitempty"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	rep, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(rep.Benchmarks) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(rep); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

func parse(sc *bufio.Scanner) (*Report, error) {
	rep := &Report{}
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			rep.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			rep.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "pkg:"):
			rep.Package = strings.TrimSpace(strings.TrimPrefix(line, "pkg:"))
		case strings.HasPrefix(line, "cpu:"):
			rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			b, ok := parseBench(line)
			if ok {
				rep.Benchmarks = append(rep.Benchmarks, b)
			}
		}
	}
	return rep, sc.Err()
}

// parseBench decodes one result line:
//
//	BenchmarkName-8  120  9876 ns/op  42 cost  0 B/op  0 allocs/op
func parseBench(line string) (Benchmark, bool) {
	f := strings.Fields(line)
	if len(f) < 4 {
		return Benchmark{}, false
	}
	iters, err := strconv.ParseInt(f[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: strings.TrimSuffix(f[0], cpuSuffix(f[0])), Iterations: iters}
	// The remainder alternates value / unit.
	for i := 2; i+1 < len(f); i += 2 {
		v, err := strconv.ParseFloat(f[i], 64)
		if err != nil {
			continue
		}
		switch f[i+1] {
		case "ns/op":
			b.NsPerOp = v
		case "B/op":
			b.BPerOp = v
		case "allocs/op":
			b.AllocsPer = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[f[i+1]] = v
		}
	}
	return b, true
}

// cpuSuffix returns the trailing -N GOMAXPROCS tag of a benchmark
// name, or "" when absent.
func cpuSuffix(name string) string {
	i := strings.LastIndex(name, "-")
	if i < 0 {
		return ""
	}
	if _, err := strconv.Atoi(name[i+1:]); err != nil {
		return ""
	}
	return name[i:]
}
