// Command table1 regenerates Table I of the paper: enhanced shape
// functions (ESF) versus regular shape functions (RSF) on the six
// benchmark circuits, reporting area usage, runtime, and the area
// improvement.
//
// Usage:
//
//	table1 [circuit ...]
//
// With no arguments all six Table I circuits run.
package main

import (
	"fmt"
	"os"

	"repro/internal/core"
)

func main() {
	rows, err := core.RunTableI(os.Args[1:])
	if err != nil {
		fmt.Fprintln(os.Stderr, "table1:", err)
		os.Exit(1)
	}
	fmt.Println("Table I — enhanced (ESF) vs regular (RSF) shape functions")
	fmt.Printf("%-14s %5s | %-10s %10s | %-10s %10s | %s\n",
		"circuit", "#mods", "ESF usage", "ESF time", "RSF usage", "RSF time", "improvement")
	var sumImp float64
	for _, r := range rows {
		fmt.Printf("%-14s %5d | %9.2f%% %10s | %9.2f%% %10s | %.2f%%\n",
			r.Name, r.Modules,
			100*r.ESFUsage, r.ESFTime.Round(1e6),
			100*r.RSFUsage, r.RSFTime.Round(1e6),
			100*r.Improvement)
		sumImp += r.Improvement
	}
	if len(rows) > 0 {
		fmt.Printf("average improvement: %.2f%% (paper: 4.4%%)\n", 100*sumImp/float64(len(rows)))
	}
}
