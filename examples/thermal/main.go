// Thermal: quantify Section II's thermal argument for symmetric
// placement. A power device radiates heat; a differential pair placed
// symmetrically about the radiator's axis sees identical temperatures
// (zero mismatch), while an asymmetric placement of the same devices
// suffers a temperature-difference mismatch.
//
//	go run ./examples/thermal
package main

import (
	"fmt"
	"log"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/seqpair"
	"repro/internal/thermal"
)

func main() {
	// A symmetric placement from an S-F sequence-pair: pair (a, b)
	// around self-symmetric power device "pwr".
	names := []string{"a", "b", "pwr"}
	w := []int{20, 20, 40}
	h := []int{20, 20, 30}
	group := seqpair.Group{Pairs: [][2]int{{0, 1}}, Selfs: []int{2}}
	sp, err := seqpair.FromSequences([]int{0, 2, 1}, []int{0, 2, 1})
	if err != nil {
		log.Fatal(err)
	}
	sym, err := sp.SymmetricPlacement(names, w, h, []seqpair.Group{group})
	if err != nil {
		log.Fatal(err)
	}
	cg := constraint.SymmetryGroup{Name: "pair", Vertical: true,
		Pairs: [][2]string{{"a", "b"}}, Selfs: []string{"pwr"}}
	if err := cg.Check(sym); err != nil {
		log.Fatal(err)
	}

	field := &thermal.Field{
		Sources: []thermal.Source{thermal.SourceFromRect(sym["pwr"], 100)},
		Sigma:   40,
	}
	fmt.Printf("symmetric placement: a at %v, b at %v, heater at %v\n",
		sym["a"], sym["b"], sym["pwr"])
	fmt.Printf("  T(a) = %.4f, T(b) = %.4f, mismatch = %.6f\n",
		field.AtRect(sym["a"]), field.AtRect(sym["b"]),
		field.PairMismatch(sym, "a", "b"))

	// The same modules placed asymmetrically (a much closer to the
	// radiator).
	asym := geom.Placement{
		"pwr": sym["pwr"],
		"a":   geom.NewRect(sym["pwr"].X2(), sym["pwr"].Y, 20, 20),
		"b":   geom.NewRect(sym["pwr"].X2()+60, sym["pwr"].Y, 20, 20),
	}
	fieldA := &thermal.Field{
		Sources: []thermal.Source{thermal.SourceFromRect(asym["pwr"], 100)},
		Sigma:   40,
	}
	fmt.Printf("\nasymmetric placement: a at %v, b at %v\n", asym["a"], asym["b"])
	fmt.Printf("  T(a) = %.4f, T(b) = %.4f, mismatch = %.6f\n",
		fieldA.AtRect(asym["a"]), fieldA.AtRect(asym["b"]),
		fieldA.PairMismatch(asym, "a", "b"))

	fmt.Println("\nthe symmetric pair is equidistant from the radiator and sees no")
	fmt.Println("temperature-induced mismatch — the paper's motivation for placing")
	fmt.Println("thermally sensitive couples symmetrically to the radiating devices.")
}
