// Layoutaware: Section V's layout-aware sizing of a fully-
// differential folded-cascode OTA (the Fig. 10 experiment). A nominal
// schematic-only sizing meets every spec in its own view and fails
// after extraction; the layout-aware flow, with the template generator
// and parasitic extraction inside the optimization loop, meets all
// specs on a smaller, squarer layout.
//
//	go run ./examples/layoutaware
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/sizing"
)

func main() {
	spec := sizing.Fig10Spec()
	fmt.Printf("specification: gain >= %.0f dB, GBW >= %.0f MHz, PM >= %.0f deg, SR >= %.0f V/us\n\n",
		spec.MinGainDB, spec.MinGBW/1e6, spec.MinPM, spec.MinSR/1e6)

	opt := anneal.Options{Seed: 1, MovesPerStage: 250, MaxStages: 250, StallStages: 60}

	for _, mode := range []struct {
		m     sizing.Mode
		title string
	}{
		{sizing.Nominal, "nominal sizing (layout as an afterthought)"},
		{sizing.LayoutAware, "layout-aware sizing (template + extraction in the loop)"},
	} {
		res, err := sizing.Run(sizing.Problem{
			Spec:      spec,
			Mode:      mode.m,
			MaxAspect: 1.3,
			Base:      sizing.DefaultBase(),
		}, opt)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(mode.title)
		fmt.Printf("  devices: in W=%.0f/%d  src W=%.0f/%d  casp W=%.0f/%d  Itail=%.0f uA\n",
			res.Design.In.W, res.Design.In.Folds,
			res.Design.Src.W, res.Design.Src.Folds,
			res.Design.CasP.W, res.Design.CasP.Folds,
			res.Design.ITail*1e6)
		fmt.Printf("  layout: %.1f x %.1f um, area %.0f um^2, aspect %.2f\n",
			res.Layout.WidthUM, res.Layout.HeightUM, res.Layout.Area(), res.Layout.AspectRatio())
		fmt.Printf("  post-extraction: gain %.1f dB, GBW %.1f MHz, PM %.1f deg, SR %.1f V/us\n",
			res.Post.GainDB, res.Post.GBW/1e6, res.Post.PM, res.Post.SR/1e6)
		if len(res.ViolationsPost) == 0 {
			fmt.Println("  => all specs met after extraction")
		} else {
			fmt.Println("  => FAILS after extraction:")
			for _, v := range res.ViolationsPost {
				fmt.Println("     -", v)
			}
		}
		if mode.m == sizing.LayoutAware {
			fmt.Printf("  extraction took %.1f%% of the sizing runtime\n", 100*res.ExtractFraction)
		}
		fmt.Println()
	}
}
