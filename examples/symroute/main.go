// Symroute: symmetric placement followed by symmetric routing — the
// full parasitic-matching story of Section II. A differential pair is
// placed as mirror images about an axis, and the two halves of the
// differential signal path are routed as exact mirror images, so both
// nets end up with identical wire length (hence identical wire
// parasitics).
//
//	go run ./examples/symroute
package main

import (
	"fmt"
	"log"
	"os"

	"repro/internal/constraint"
	"repro/internal/geom"
	"repro/internal/render"
	"repro/internal/route"
	"repro/internal/seqpair"
)

func main() {
	// Place: pair (inL, inR), self-symmetric tail, two load devices as
	// a second pair — a differential half-circuit.
	names := []string{"inL", "inR", "tail", "ldL", "ldR"}
	w := []int{10, 10, 12, 8, 8}
	h := []int{8, 8, 6, 10, 10}
	groups := []seqpair.Group{{
		Pairs: [][2]int{{0, 1}, {3, 4}},
		Selfs: []int{2},
	}}
	sp, err := seqpair.FromSequences([]int{3, 0, 2, 1, 4}, []int{3, 0, 2, 1, 4})
	if err != nil {
		log.Fatal(err)
	}
	sp.RepairSF(groups)
	pl, err := sp.SymmetricPlacement(names, w, h, groups)
	if err != nil {
		log.Fatal(err)
	}
	pl.Normalize()
	cg := constraint.SymmetryGroup{Name: "dp", Vertical: true,
		Pairs: [][2]string{{"inL", "inR"}, {"ldL", "ldR"}}, Selfs: []string{"tail"}}
	if err := cg.Check(pl); err != nil {
		log.Fatal(err)
	}
	axis2, _ := cg.Axis2(pl)
	fmt.Printf("symmetric placement about x = %.1f, legal=%v\n", float64(axis2)/2, pl.Legal())

	// Route: grid with margin, pins on module tops/bottoms.
	const margin = 4
	g := route.FromPlacement(pl, margin)
	bb := pl.BBox()
	shift := func(p geom.Point) geom.Point {
		return geom.Point{X: p.X - bb.X + margin, Y: p.Y - bb.Y + margin}
	}
	pinAbove := func(m string) geom.Point {
		r := pl[m]
		return shift(geom.Point{X: r.X + r.W/2, Y: r.Y2()})
	}
	// Differential path: inL -> ldL mirrored onto inR -> ldR. Grid
	// cells are unit squares, so the mirrored pin of a cell is
	// MirrorCell (cell centers sit at x+0.5); deriving B's pins from
	// A's keeps them exact mirrors.
	gridAxis2 := axis2 + 2*(margin-bb.X)
	pinsA := []geom.Point{pinAbove("inL"), pinAbove("ldL")}
	pinsB := []geom.Point{
		route.MirrorCell(pinsA[0], gridAxis2),
		route.MirrorCell(pinsA[1], gridAxis2),
	}
	pa, pb, err := g.RouteSymmetricPair("sig_p", pinsA, "sig_n", pinsB, gridAxis2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("routed sig_p: %d cells, sig_n: %d cells (matched: %v)\n",
		pa.Length(), pb.Length(), pa.Length() == pb.Length())

	// Render placement + routes; shift placement into grid space.
	gridPl := geom.Placement{}
	for n, r := range pl {
		gridPl[n] = r.Translate(margin-bb.X, margin-bb.Y)
	}
	f, err := os.Create("symroute.svg")
	if err != nil {
		log.Fatal(err)
	}
	defer f.Close()
	if err := render.SVG(f, gridPl, render.Options{
		Axes2: []int{gridAxis2},
		Paths: []route.Path{pa, pb},
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Println("wrote symroute.svg")
}
