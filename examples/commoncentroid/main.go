// Commoncentroid: generate and verify the interdigitated
// common-centroid unit pattern of Fig. 3(a). A current mirror's two
// devices are split into unit transistors and arranged in a
// point-symmetric pattern (A B B A / B A A B) so both devices share
// one centroid, cancelling linear process gradients.
//
//	go run ./examples/commoncentroid
package main

import (
	"fmt"
	"log"

	"repro/internal/constraint"
)

func main() {
	for _, cfg := range []struct {
		nA, nB, rows int
	}{
		{4, 4, 2},
		{6, 2, 2},
		{4, 2, 2},
		{3, 3, 2},
	} {
		grid, err := constraint.InterdigitationPattern(cfg.nA, cfg.nB, cfg.rows)
		if err != nil {
			fmt.Printf("A×%d B×%d in %d rows: %v\n\n", cfg.nA, cfg.nB, cfg.rows, err)
			continue
		}
		fmt.Printf("A×%d B×%d in %d rows:\n", cfg.nA, cfg.nB, cfg.rows)
		for r := len(grid) - 1; r >= 0; r-- {
			fmt.Print("  ")
			for _, lab := range grid[r] {
				fmt.Printf("%c ", lab)
			}
			fmt.Println()
		}
		pl, cc := constraint.PatternPlacement(grid, 10, 12)
		if err := cc.Check(pl); err != nil {
			log.Fatalf("pattern violates common centroid: %v", err)
		}
		fmt.Println("  -> common centroid verified")
		fmt.Println()
	}
	fmt.Println("point-symmetric interdigitation gives every device the same")
	fmt.Println("centroid, the Fig. 3(a) constraint for matched mirrors and pairs.")
}
