// Fixedoutline: place the Miller op amp under a fixed-outline
// objective (Adya/Markov style) and compare against the unconstrained
// run. The composable cost model adds a quadratic penalty on the
// bounding box exceeding the target outline, steering the annealer
// toward placements that fit; the result reports either a fitting
// bounding box or the remaining violation penalty.
//
//	go run ./examples/fixedoutline
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/core"
)

func main() {
	bench := circuits.MillerOpAmp()
	opt := anneal.Options{Seed: 3, MovesPerStage: 150, MaxStages: 200, StallStages: 40}

	// Unconstrained baseline: whatever shape minimizes area + HPWL.
	free, err := core.PlaceBench(bench, core.MethodSeqPair, opt)
	if err != nil {
		log.Fatal(err)
	}
	fb := free.Placement.BBox()
	fmt.Printf("unconstrained: %dx%d bounding box (aspect %.2f)\n",
		fb.W, fb.H, float64(fb.W)/float64(fb.H))

	// Fixed outline: ask for a wide, short strip the baseline does not
	// naturally produce.
	obj := &core.Objective{OutlineW: fb.W + fb.W/2, OutlineH: fb.H - fb.H/5}
	fit, err := core.PlaceBenchObjective(bench, core.MethodSeqPair, opt, obj)
	if err != nil {
		log.Fatal(err)
	}
	bb := fit.Placement.BBox()
	o := fit.Outline
	fmt.Printf("fixed outline %dx%d: placed %dx%d\n", o.W, o.H, bb.W, bb.H)
	if o.Fits() {
		fmt.Println("  bounding box respects the outline")
	} else {
		fmt.Printf("  violated by %dx%d, penalty %.4g\n", o.ExcessW, o.ExcessH, o.Penalty)
	}
	if len(fit.Violations) == 0 {
		fmt.Println("  symmetry constraints: all satisfied")
	}
}
