// Symmetry: reproduce Fig. 1 of the paper — build the symmetric
// placement encoded by the symmetric-feasible sequence-pair
// (EBAFCDG, EBCDFAG) with symmetry group γ = {(C,D), (B,G), A, F},
// verify property (1), and render the result as ASCII art.
//
//	go run ./examples/symmetry
package main

import (
	"fmt"
	"log"
	"strings"

	"repro/internal/constraint"
	"repro/internal/seqpair"
)

func main() {
	// Letters A..G map to module ids 0..6.
	names := []string{"A", "B", "C", "D", "E", "F", "G"}
	alpha := []int{4, 1, 0, 5, 2, 3, 6} // E B A F C D G
	beta := []int{4, 1, 2, 3, 5, 0, 6}  // E B C D F A G
	sp, err := seqpair.FromSequences(alpha, beta)
	if err != nil {
		log.Fatal(err)
	}
	group := seqpair.Group{
		Pairs: [][2]int{{2, 3}, {1, 6}}, // (C,D), (B,G)
		Selfs: []int{0, 5},              // A, F
	}

	fmt.Println("sequence-pair (α; β) = (EBAFCDG; EBCDFAG)")
	fmt.Printf("property (1) symmetric-feasible: %v\n\n", sp.SymmetricFeasibleGroup(group))

	// Module dimensions (pairs share dims; selfs have even widths).
	w := []int{16, 10, 9, 9, 12, 14, 10}
	h := []int{8, 12, 10, 10, 30, 8, 12}
	pl, err := sp.SymmetricPlacement(names, w, h, []seqpair.Group{group})
	if err != nil {
		log.Fatal(err)
	}
	pl.Normalize()

	cg := constraint.SymmetryGroup{
		Name: "γ", Vertical: true,
		Pairs: [][2]string{{"C", "D"}, {"B", "G"}},
		Selfs: []string{"A", "F"},
	}
	if err := cg.Check(pl); err != nil {
		log.Fatal("placement not symmetric: ", err)
	}
	axis2, _ := cg.Axis2(pl)
	fmt.Printf("legal: %v, symmetric about x = %.1f\n\n", pl.Legal(), float64(axis2)/2)

	// ASCII rendering (1 char per 2 units horizontally).
	bb := pl.BBox()
	gw, gh := (bb.W+1)/2+1, bb.H
	grid := make([][]byte, gh)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(".", gw))
	}
	for _, name := range pl.Names() {
		r := pl[name]
		for y := r.Y; y < r.Y2(); y++ {
			for x := r.X; x < r.X2(); x++ {
				grid[gh-1-y][x/2] = name[0]
			}
		}
	}
	for _, row := range grid {
		fmt.Println(string(row))
	}
}
