// Quickstart: place the paper's Miller op amp (Fig. 6) through the
// public placer API — the hierarchical HB*-tree engine selected from
// the algorithm registry — and print the layout and its per-term cost
// breakdown.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"repro/placer"
)

func main() {
	// The benchmark ships with its published hierarchy: CORE = {DP,
	// CM1, CM2}, plus output device N8 and compensation cap C. Any
	// placer.Problem works here; Benchmark is just the fastest way to
	// a real one.
	prob, err := placer.Benchmark("miller")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d modules, %d symmetry groups, hierarchy=%v\n",
		prob.Name, len(prob.Modules), len(prob.Symmetry), prob.Hierarchy != nil)

	res, err := placer.Solve(context.Background(), prob,
		placer.WithAlgorithm(placer.HBStar),
		placer.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("placed by %s in %s: %dx%d bounding box, area usage %.1f%%, legal=%v\n",
		res.Algorithm, res.Runtime.Round(1e6), res.BBoxW, res.BBoxH, 100*res.AreaUsage, res.Legal)
	for _, term := range res.Breakdown {
		fmt.Printf("  cost %-14s %.4g\n", term.Name+":", term.Cost)
	}
	for _, m := range res.Placement {
		fmt.Printf("  %-3s at (%4d,%4d) size %3dx%-3d\n", m.Name, m.X, m.Y, m.W, m.H)
	}
	if len(res.Violations) == 0 {
		fmt.Println("all layout constraints satisfied (DP and CM1 mirrored, CORE connected)")
	} else {
		for _, v := range res.Violations {
			fmt.Println("violation:", v)
		}
	}

	// The same registry also answers "what can I run?" — the CLI's
	// -algorithms flag and the daemon's GET /v1/algorithms serve it.
	fmt.Print("registry:")
	for _, info := range placer.Algorithms() {
		fmt.Printf(" %s(%s)", info.Name, info.Kind())
	}
	fmt.Println()
}
