// Quickstart: place the paper's Miller op amp (Fig. 6) with the
// hierarchical HB*-tree placer and print the layout.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/core"
)

func main() {
	// The benchmark ships with its published hierarchy: CORE = {DP,
	// CM1, CM2}, plus output device N8 and compensation cap C.
	bench := circuits.MillerOpAmp()
	fmt.Printf("circuit %s: %d devices, hierarchy depth %d\n",
		bench.Name, len(bench.Circuit.Devices), bench.Tree.Depth())

	res, err := core.PlaceBench(bench, core.MethodHBStar, anneal.Options{
		Seed:          1,
		MovesPerStage: 150,
		MaxStages:     200,
		StallStages:   40,
	})
	if err != nil {
		log.Fatal(err)
	}

	bb := res.Placement.BBox()
	fmt.Printf("placed in %s: %dx%d bounding box, area usage %.1f%%, legal=%v\n",
		res.Runtime.Round(1e6), bb.W, bb.H, 100*res.AreaUsage, res.Legal)
	for _, name := range res.Placement.Names() {
		r := res.Placement[name]
		fmt.Printf("  %-3s at (%4d,%4d) size %3dx%-3d\n", name, r.X, r.Y, r.W, r.H)
	}
	if len(res.Violations) == 0 {
		fmt.Println("all layout constraints satisfied (DP and CM1 mirrored, CORE connected)")
	} else {
		for _, v := range res.Violations {
			fmt.Println("violation:", v)
		}
	}
}
