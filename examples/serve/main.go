// Serve: the placement service end to end, in one process — start
// the scheduler behind the same HTTP handler cmd/placed serves, then
// act as a client: discover the valid algorithms from
// GET /v1/algorithms, POST the Miller op amp in the canonical wire
// format, poll the job to completion, re-POST the identical request
// to hit the content-addressed result cache, race the portfolio,
// cancel a long run to get its best-so-far placement, and ride out
// load shedding: when a saturated daemon answers 429 + Retry-After,
// the client backs off with jitter and resubmits the identical bytes
// — content addressing makes the retry idempotent.
//
//	go run ./examples/serve
//
// Against a real daemon the client half is unchanged: point base at
// `placed -addr :8080` instead of the httptest server.
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strconv"
	"time"

	"repro/internal/circuits"
	"repro/internal/service"
	"repro/internal/wire"
)

func main() {
	sched := service.New(service.Config{Workers: 2})
	defer sched.Close()
	srv := httptest.NewServer(service.NewHandler(sched))
	defer srv.Close()
	base := srv.URL

	// 0. No guessing algorithm strings: the daemon lists the placer
	// registry (every engine plus the portfolio meta-method).
	fmt.Print("GET /v1/algorithms ->")
	for _, a := range getAlgorithms(base) {
		fmt.Printf(" %s", a.Name)
	}
	fmt.Println()

	// The bench crosses the wire as a canonical, versioned problem;
	// its hash is the content address identical requests share.
	prob, err := wire.FromBench(circuits.MillerOpAmp())
	if err != nil {
		log.Fatal(err)
	}
	hash, _ := prob.Hash()
	fmt.Printf("problem %q, content address %s...\n", prob.Name, hash[:12])

	req := wire.Request{Problem: *prob, Options: wire.Options{
		Method: wire.MethodSeqPair, Seed: 3, MovesPerStage: 150, MaxStages: 200, StallStages: 40,
	}}

	// 1. Cold solve: async submit, then poll.
	job := post(base, req, false)
	fmt.Printf("POST /v1/place -> job %s (%s)\n", job.ID, job.State)
	job = pollDone(base, job.ID)
	fmt.Printf("  done: cost %.0f, %dx%d bounding box, legal=%v, violations=%d\n",
		job.Result.Cost, job.Result.BBoxW, job.Result.BBoxH, job.Result.Legal, len(job.Result.Violations))
	if bd := job.Result.Breakdown; bd != nil {
		fmt.Printf("  cost breakdown: area %.0f + hpwl %.0f\n", bd.Area, bd.HPWL)
	}

	// 2. Identical POST: served from the result cache, same placement.
	again := post(base, req, true)
	fmt.Printf("identical POST -> %s, cache_hit=%v, same cost %.0f\n",
		again.State, again.CacheHit, again.Result.Cost)

	// 3. Portfolio: race seqpair, bstar and tcg on the same problem.
	req.Options.Method = wire.MethodPortfolio
	race := post(base, req, true)
	fmt.Printf("portfolio -> winner %s at cost %.0f (feasibility-first ranking)\n",
		race.Result.Method, race.Result.Cost)

	// 4. Cancellation: a long run (near-flat cooling, so it will not
	// finish on its own), stopped shortly after its first progress
	// report; the job keeps the best placement found so far.
	req.Options = wire.Options{Method: wire.MethodBStar, MovesPerStage: 400,
		MaxStages: 100000, StallStages: 100000, Cooling: 0.9999}
	long := post(base, req, false)
	for {
		j := get(base, long.ID)
		if j.Progress != nil && j.Progress.Stage > 0 {
			fmt.Printf("live progress: stage %d, best %.0f, %.0f moves/sec\n",
				j.Progress.Stage, j.Progress.BestCost, j.Progress.MovesPerSec)
			break
		}
		if j.State.Terminal() {
			log.Fatalf("long job ended %s before reporting progress: %s", j.State, j.Error)
		}
		time.Sleep(2 * time.Millisecond)
	}
	httpDo(http.MethodDelete, base+"/v1/jobs/"+long.ID, nil)
	cancelled := pollDone(base, long.ID)
	fmt.Printf("DELETE -> %s, best-so-far cost %.0f after %d stages\n",
		cancelled.State, cancelled.Result.Cost, cancelled.Result.Stages)

	// 5. Load shedding: a deliberately tiny daemon (one worker, queue
	// depth one) refuses the overflow POST with 429 + Retry-After
	// instead of queueing without bound. postRetry backs off with
	// jitter, honours the server's hint, and resubmits the identical
	// bytes — the content hash names the job, so a retry can only
	// coalesce with the in-flight copy or hit the cache, never
	// double-solve.
	tiny := service.New(service.Config{Workers: 1, QueueDepth: 1})
	defer tiny.Close()
	tsrv := httptest.NewServer(service.NewHandler(tiny))
	defer tsrv.Close()

	slow := req
	slow.Options = wire.Options{Method: wire.MethodSeqPair, Seed: 7, MovesPerStage: 150,
		MaxStages: 100000, StallStages: 100000, Cooling: 0.9999, TimeoutMS: 1500}
	blocker := post(tsrv.URL, slow, false) // occupies the only worker...
	for get(tsrv.URL, blocker.ID).State != service.StateRunning {
		time.Sleep(2 * time.Millisecond)
	}
	slow.Options.Seed = 8
	post(tsrv.URL, slow, false) // ...and this one fills the queue,
	slow.Options.Seed = 9
	shed := postRetry(tsrv.URL, slow) // so this POST is shed with 429.
	fmt.Printf("shed POST accepted after backoff as job %s (%s)\n", shed.ID, shed.State)
}

// postRetry POSTs a request, treating 429 (load shed) and 5xx
// (drain, transient failure) as retryable: exponential backoff with
// jitter, capped, preferring the server's Retry-After hint when one
// is sent. Safe to call blindly because submission is idempotent —
// identical request bytes hash to the same content address.
func postRetry(base string, req wire.Request) service.JobView {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	backoff := 100 * time.Millisecond
	for attempt := 1; ; attempt++ {
		resp, err := http.Post(base+"/v1/place", "application/json", bytes.NewReader(body))
		if err != nil {
			log.Fatal(err)
		}
		if resp.StatusCode != http.StatusTooManyRequests && resp.StatusCode < 500 {
			defer resp.Body.Close()
			var v service.JobView
			if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
				log.Fatal(err)
			}
			return v
		}
		delay := backoff/2 + time.Duration(rand.Int63n(int64(backoff/2)+1))
		if ra := resp.Header.Get("Retry-After"); ra != "" {
			if secs, err := strconv.Atoi(ra); err == nil && secs > 0 {
				delay = time.Duration(secs) * time.Second
			}
		}
		resp.Body.Close()
		fmt.Printf("  POST -> %d, backing off %s (attempt %d)\n",
			resp.StatusCode, delay.Round(time.Millisecond), attempt)
		if attempt >= 20 {
			log.Fatalf("gave up after %d attempts", attempt)
		}
		time.Sleep(delay)
		if backoff < 2*time.Second {
			backoff *= 2
		}
	}
}

func post(base string, req wire.Request, wait bool) service.JobView {
	body, err := json.Marshal(req)
	if err != nil {
		log.Fatal(err)
	}
	url := base + "/v1/place"
	if wait {
		url += "?wait=1"
	}
	return httpDo(http.MethodPost, url, body)
}

func get(base, id string) service.JobView {
	return httpDo(http.MethodGet, base+"/v1/jobs/"+id, nil)
}

func getAlgorithms(base string) []service.AlgorithmView {
	resp, err := http.Get(base + "/v1/algorithms")
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var views []service.AlgorithmView
	if err := json.NewDecoder(resp.Body).Decode(&views); err != nil {
		log.Fatal(err)
	}
	return views
}

func pollDone(base, id string) service.JobView {
	for {
		j := get(base, id)
		if j.State.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func httpDo(method, url string, body []byte) service.JobView {
	req, err := http.NewRequest(method, url, bytes.NewReader(body))
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var v service.JobView
	if err := json.NewDecoder(resp.Body).Decode(&v); err != nil {
		log.Fatalf("%s %s: %v", method, url, err)
	}
	return v
}
