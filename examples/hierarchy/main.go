// Hierarchy: build a layout design hierarchy in the style of Fig. 2 —
// sub-circuits with symmetry and proximity constraints under a top
// design — model it with HB*-trees (Fig. 5), and produce a placement
// whose islands stay mirrored through every annealing move (Fig. 4).
//
//	go run ./examples/hierarchy
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/hbstar"
	"repro/internal/hier"
)

func main() {
	// Fig. 2-style design: the folded cascode has four symmetric
	// pairs, a matched mirror and a proximity-bound bias cluster.
	bench := circuits.FoldedCascode()
	fmt.Printf("design %q: %d devices\n", bench.Name, len(bench.Circuit.Devices))
	printTree(bench.Tree, 0)

	// The hierarchy can also be detected automatically from the
	// netlist (sizing-rules style), as Section III assumes.
	detected, blocks := hier.BuildTree(bench.Circuit, "vdd", "gnd")
	fmt.Printf("\nstructural recognition found %d blocks:\n", len(blocks))
	for _, b := range blocks {
		fmt.Printf("  %-14s %v\n", b.Kind, b.Devices)
	}
	_ = detected

	// Place with HB*-trees: one tree per sub-circuit plus the top.
	res, err := hbstar.Place(&hbstar.Problem{Bench: bench, WireWeight: 0.5},
		anneal.Options{Seed: 3, MovesPerStage: 150, MaxStages: 200, StallStages: 40})
	if err != nil {
		log.Fatal(err)
	}
	bb := res.Placement.BBox()
	fmt.Printf("\nHB*-tree placement: %dx%d, usage %.1f%%, legal=%v\n",
		bb.W, bb.H, 100*res.Placement.AreaUsage(), res.Placement.Legal())
	if len(res.Violations) == 0 {
		fmt.Println("all hierarchical constraints satisfied")
	}
	for _, v := range res.Violations {
		fmt.Println("violation:", v)
	}
}

func printTree(n *constraint.Node, depth int) {
	pad := ""
	for i := 0; i < depth; i++ {
		pad += "  "
	}
	kind := ""
	if n.Kind != constraint.KindNone {
		kind = " [" + n.Kind.String() + "]"
	}
	fmt.Printf("%s%s%s %v\n", pad, n.Name, kind, n.Devices)
	for _, c := range n.Children {
		printTree(c, depth+1)
	}
}
