// Deterministic: Section IV's hierarchically bounded enumeration with
// enhanced shape functions. The example shows (1) why enumeration must
// be bounded by hierarchy — the number of B*-tree placements explodes
// to the paper's 57,657,600 at just 8 modules — and (2) the full
// deterministic placer on Table I benchmarks, ESF versus RSF.
//
//	go run ./examples/deterministic
package main

import (
	"fmt"
	"log"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/circuits"
	"repro/internal/core"
)

func main() {
	// Part 1: the combinatorial wall motivating hierarchical bounding.
	fmt.Println("B*-tree placements of n modules (n! · Catalan(n)):")
	for _, n := range []int{2, 4, 6, 8} {
		fmt.Printf("  n=%d: %v\n", n, bstar.CountPlacements(n))
	}

	// Part 2: Table I on the smaller circuits: ESF vs RSF.
	fmt.Println("\ndeterministic placement, ESF vs RSF:")
	for _, name := range []string{"comparator_v2", "miller_v2", "folded_casc"} {
		bench, err := circuits.TableIBench(name)
		if err != nil {
			log.Fatal(err)
		}
		for _, r := range []struct {
			method core.Method
			label  string
		}{
			{core.MethodDeterministicRSF, "RSF"},
			{core.MethodDeterministicESF, "ESF"},
		} {
			res, err := core.PlaceBench(bench, r.method, anneal.Options{})
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  %-14s %s: usage %.2f%%  (%s, legal=%v)\n",
				name, r.label, 100*res.AreaUsage, res.Runtime.Round(1e6), res.Legal)
		}
	}
	fmt.Println("\nESF interleaves sub-placements (Fig. 7's w_imp), so its area")
	fmt.Println("usage is never worse than RSF and improves as circuits grow.")
}
