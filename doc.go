// Package repro reproduces "Analog Layout Synthesis — Recent Advances
// in Topological Approaches" (Graeb, Balasa, Castro-Lopez, Chang,
// Fernandez, Lin, Strasser; DATE 2009) as a self-contained Go library.
//
// The paper surveys four topological approaches to analog layout
// synthesis; this module implements all four from scratch, along with
// every substrate they rest on:
//
//   - Section II — symmetric-feasible sequence-pairs: internal/seqpair
//     (property (1), the search-space Lemma, O(n log log n) packing on
//     the van Emde Boas queue of internal/veb, and a symmetric
//     placement constructor), driven by internal/place.
//   - Section III — hierarchical placement: internal/hbstar
//     (HB*-trees with contour nodes) over internal/asf (ASF-B*-tree
//     symmetry islands) and internal/bstar, with the constraint model
//     of internal/constraint and automatic hierarchy detection in
//     internal/hier.
//   - Section IV — deterministic placement: internal/shapefn (shape
//     functions, enhanced shape additions, hierarchically bounded
//     enumeration) over internal/bstar enumeration; Table I runs on
//     the benchmark generators of internal/circuits.
//   - Section V — layout-aware sizing: internal/sizing over the
//     device model (internal/mos), analytic performance evaluation
//     (internal/perf), layout templates (internal/template) and
//     parasitic extraction (internal/extract).
//
// internal/core ties everything together behind one API and hosts the
// drivers that regenerate each table and figure; the benchmarks in
// this package (bench_test.go) exercise them. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured results.
//
// # The optimization hot path
//
// All stochastic placers run on the engines of internal/anneal, which
// support two protocols. The legacy cloning protocol (anneal.Solution:
// Cost/Neighbor) copies the whole representation per proposed move.
// The in-place protocol (anneal.MutableSolution: Perturb returning an
// exact Undo, plus Snapshot/Restore for the best-so-far) mutates one
// solution and reverts rejected moves, the move-and-undo scheme of the
// B*-tree annealing tradition; Anneal and Greedy select it
// automatically when a solution implements it. All placers do.
//
// # The engine core
//
// Every placer reaches those protocols through one shared kernel,
// internal/engine — the paper's "one problem, interchangeable
// representations" structure made literal. A representation (the
// topology encoding plus its move table) implements
// engine.Representation: Perturb with exact Undo, Pack into
// coordinates, Snapshot/Restore, Clone and Placement; the kernel's
// engine.Solution supplies everything the six hand-rolled *Solution
// structs used to duplicate — ownership of the cost.Model, the
// incremental evaluation wiring (diff-based Update for topological
// repacks, UpdateMoved for representations implementing
// engine.MovedModules, full Eval on restores of direct-coordinate
// state), the model-journal undo bookkeeping, feasible-init retries
// (engine.FeasibleInit / RunFeasible) and result assembly. The
// adapters in internal/place (spRep, btRep, tcgRep, slRep, absRep) and
// internal/hbstar (forestRep) are each the encoding and its moves,
// nothing else.
//
// Cross-engine features land in the kernel once: representations
// implementing engine.Crossover gain the memetic genetic:<repr>
// registry engines (order crossover over sequence-pairs, uniform
// crossover over absolute coordinates, through anneal.Evolve's
// CrossoverRate), and representations exposing an engine.MoveTable
// gain the opt-in adaptive move portfolio
// (placer.WithAdaptiveMoves()): move kinds proposed proportionally to
// their observed acceptance rate, Laplace-smoothed so no kind
// starves. Both are off the default path, which stays bit-identical
// to the pinned pre-kernel goldens.
//
// # The composable objective
//
// Every placer optimizes a composite objective built from the Term
// protocol of internal/cost: a Term exposes a full Eval over all
// modules, an incremental Update over the set of moved modules, an
// exact Undo, and a Value read from cached state. A cost.Model
// composes weighted terms over one canonical coordinate cache,
// detects each move's dirty set by diffing repacked coordinates
// against that cache (or takes it explicitly via UpdateMoved from
// placers that know their move), and guarantees that incremental and
// from-scratch evaluation agree bit for bit — integer terms keep
// integer totals, float terms cache per-element values and sum in
// fixed order. Built-in terms: bounding-box area, dirty-net HPWL
// (per-net cached boxes behind a module→nets index), fixed-outline
// penalty (Adya/Markov), proximity grouping, and thermal mismatch
// over symmetry pairs (internal/thermal); placers add their own —
// the absolute placer's incremental pairwise-overlap penalty and the
// hierarchical placer's proximity-fragments count are ~50-line Terms
// rather than cross-placer surgery. Solutions additionally implement
// anneal.MoveReporter, exposing each move's dirty set for
// verification; the property tests in internal/place and
// internal/cost pin incremental-equals-full with tolerance zero.
// place.Problem (flat placers) and hbstar.Problem (hierarchical)
// carry the per-term weights; core.PlaceBenchObjective and
// cmd/analogplace's -outline/-thermal/-prox/-wire/-area flags thread
// them from the top.
//
// Packing — the annealer's dominant inner operation — is
// allocation-free at steady state through reusable workspaces:
// bstar.Tree.PackInto(*bstar.PackWorkspace) packs with a pooled
// contour spliced in place, seqpair.SP.PackInto(*seqpair.PackWorkspace)
// reuses the vEB queue and LCS buffers, and tcg.TCG.PackInto does the
// same for longest-path evaluation. The compatibility wrappers
// (Pack()) remain and allocate only the returned slices;
// seqpair.SP.Pack and PackSymmetric additionally cache their solver
// scratch on the SP, which makes packing methods unsafe for concurrent
// use on a single SP — concurrent searches use distinct solutions.
//
// anneal.ParallelAnneal runs parallel multi-start: one independent
// chain per worker (own RNG, own representation, own workspaces) and a
// deterministic best-of reduction. Worker 0 replicates the serial
// chain exactly, so multi-start never returns a worse cost than the
// serial run of the same Options. Placers enable it through
// anneal.Options.Workers and cmd/analogplace's -workers flag. See
// PERFORMANCE.md for measured numbers.
//
// Annealing runs are cooperatively cancellable: anneal.Options.Context
// is checked once per temperature stage (never per move, keeping the
// hot loop clean), and a cancelled run returns the best solution seen
// so far with Stats.Cancelled set. Options.Progress delivers per-stage
// statistics snapshots (best cost, stage, temperature, move counts)
// without perturbing the search — the plumbing the service layer's
// live job progress is built on.
//
// # The service layer
//
// Placement-as-a-service lives in two packages plus a daemon:
//
// internal/wire is the canonical, versioned JSON wire format: a
// Problem carries modules, symmetry groups, nets, proximity groups,
// objective weights and (for the hierarchical placer) the design
// hierarchy; Options select and tune a solver; a Request bundles the
// two. Decoding is strict — unknown fields, trailing bytes and
// semantically invalid problems are rejected — and decoded values are
// normalized so every semantic problem has exactly one canonical
// encoding. Hash (SHA-256 of that encoding) is therefore a content
// address: permuting nets or pair endpoints does not change it. The
// format converts losslessly to place.Problem (flat placers) and to a
// circuits.Bench with constraint tree (hierarchical placer); a fuzz
// harness with a checked-in corpus pins "never panics" and
// "decode→encode→decode is a fixed point".
//
// internal/service schedules wire requests over a bounded worker
// pool. Each job solves under its own context.Context (DELETE and
// timeout_ms cancel at the next stage boundary, keeping the
// best-so-far placement), reports live progress aggregated from
// anneal.Options.Progress across chains and racers, and lands in a
// content-addressed LRU cache keyed by the request hash — identical
// requests are answered without re-solving, and identical in-flight
// requests coalesce onto one job. MethodPortfolio races the seqpair,
// bstar and tcg representations on the same problem concurrently and
// keeps the winner under feasibility-first ranking (fewest constraint
// violations, then cost), so a representation that ignores symmetry
// groups cannot "win" a constrained problem on raw cost.
//
// cmd/placed serves the scheduler over HTTP: POST /v1/place (async,
// or synchronous with ?wait=1), GET /v1/algorithms for the registry,
// GET /v1/jobs/{id} for status, progress and result,
// DELETE /v1/jobs/{id} to cancel, /healthz, and Prometheus text
// metrics on /metrics (job states, queue/running gauges, cache
// hit/miss counters, solve-latency histogram). cmd/analogplace speaks
// the same wire format through -json (input) and -json-out (output),
// so a request solves identically through the CLI and the daemon;
// examples/serve walks the whole loop in one process.
//
// # The public API
//
// Package repro/placer is the importable front door over all of the
// above: one canonical placer.Problem (flat view plus optional design
// hierarchy, losslessly convertible to and from the wire format via
// wire.Problem.ToCanon and wire.FromCanon), an Engine interface with
// a self-registration registry (placer.Register) behind which all six
// built-in engines live, and a context-first
// placer.Solve(ctx, problem, opts...) with functional options —
// WithAlgorithm, WithPortfolio, WithWorkers, WithSeed, WithSchedule,
// WithProgress (streaming per-stage snapshots), WithDeadline — that
// returns a Result carrying the placement in module order, the
// per-term cost breakdown and the annealing statistics. The service
// layer, the CLI and every example are thin adapters over this one
// entry point: the registry is the single algorithm namespace
// (analogplace -algorithms and GET /v1/algorithms enumerate it), and
// pin tests hold the CLI, the daemon and the public API bit-identical
// on the Miller and n=1000 benchmarks. Runnable godoc examples on the
// placer package double as compile-checked documentation; see
// PERFORMANCE.md's "Public API" section for migration notes from
// internal/place.
//
// # Fault tolerance
//
// The service layer assumes it will be interrupted and plans for it
// in four layers. internal/fault is a failpoint registry: named
// injection sites (scheduler/worker-panic, solve/slow, solve/error,
// wire/decode-err) compiled into the hot paths but costing one
// atomic load when disarmed, armed via PLACED_FAULTPOINTS with
// deterministic per-point seeding (PLACED_FAULT_SEED) so a chaos run
// replays. Annealing jobs checkpoint their best snapshot into a
// store keyed by the request's content hash: a job killed by
// deadline, cancellation or crash still returns its best-so-far
// placement, and resubmitting the identical request resumes the
// anneal warm from the checkpoint instead of cold from a random
// state (the checkpoint is dropped once a canonical run completes
// and the result cache takes over). Workers are supervised: a panic
// in a solve is caught, the job is requeued at the front and the
// worker restarts under exponential backoff with jitter; a job that
// keeps crashing is quarantined as failed with its captured stack
// rather than poisoning the pool, and per-worker crash counters
// surface on /metrics. Finally the daemon sheds load instead of
// queueing without bound — a full queue answers 429 with a
// Retry-After estimated from observed solve latency, and under
// queue-depth pressure new runs start with a shortened schedule,
// marked "degraded" in the job view and kept out of the result
// cache so a quieter resubmission re-solves at full quality. The
// chaos suite (go test -race -run Chaos ./internal/service/...)
// storms all four failpoints at once through the HTTP surface and
// pins the contract: no wedged scheduler, every accepted job reaches
// a terminal state, and with failpoints disarmed results stay
// bit-identical.
//
// # Scaling past n=1000
//
// The paper's benchmarks stop at tens of modules; the solve path here
// is built to hold up to 10⁴–10⁵. placer.Synthetic generates seeded,
// deterministic instances at that scale (log-uniform module areas, a
// truncated power-law net-degree distribution in the spirit of Rent's
// rule, optional symmetry-pair density), and three mechanisms keep
// them tractable. First, incremental packing: sequence-pair repacks
// reuse the unchanged prefix and suffix of the previous longest-
// common-subsequence evaluation (seqpair.IncPack, exact to the bit
// against a full pack, ~14× per move at n=10⁴), and B*-tree repacks
// replay the unchanged pre-order prefix from per-step records
// (bstar.IncPackWorkspace). Second, range-limited moves: above
// n≈2000 the sequence-pair placer draws TimberWolf-style local
// window moves so a perturbation disturbs a bounded alpha range
// instead of the whole pair. Third, parallel tempering
// (placer.WithTempering(chains, exchangeEvery)): chains anneal on a
// top-anchored geometric temperature ladder and periodically exchange
// states under the Metropolis rule, which tolerates a 3× faster
// cooling schedule than independent multi-start needs — measured
// time-to-matched-cost ratios are in PERFORMANCE.md, and with
// exchanges disabled the run is bit-identical to
// anneal.ParallelAnneal. cmd/benchtrend enforces the packing and
// time-to-target trajectories in CI against the checked-in
// BENCH_PR7.json baseline.
//
// # Observability
//
// Every layer of a solve can be seen without perturbing it. The
// internal/obs package provides two zero-dependency primitives.
// Hierarchical spans (request → job → engine → anneal → stage) are
// threaded through context and cost one atomic load when disarmed;
// arming them (placed -obs, or obs.Enable) records into a fixed
// in-memory ring served at /debug/spans. The flight recorder
// (obs.Flight) is an allocation-bounded ring of per-stage annealing
// telemetry — temperature, cost, cumulative acceptance counters,
// move-kind histograms, replica-exchange attempts — recorded at
// stage boundaries, never inside the move loop. Recording draws
// nothing from the annealer's RNG and events carry no wall-clock, so
// traced solves are bit-identical to untraced ones and a trace is a
// deterministic function of (problem, seed, schedule): the pin suite
// replays a pre-instrumentation golden against the traced path, and
// placer/trace_test.go pins byte-equal trace JSON across runs.
//
// Tracing is on by default in the daemon (placed -trace-events,
// negative disables; service.Config.TraceEvents). A finished job's
// recording — including failpoint and worker-crash provenance from
// the fault-tolerance layer — is served as versioned, schema-checked
// JSON (wire.Trace.Validate) at GET /v1/jobs/{id}/trace; 409 until
// the job is terminal. The CLI writes the same JSON via analogplace
// -trace-out, and cmd/placetrace renders it as an SVG chart of
// per-rung cost trajectories, acceptance rates and exchange markers.
// placed also logs structured slog lines for every request and job
// transition, exports placed_queue_depth and
// placed_solve_latency_ewma_seconds gauges on /metrics, and mounts
// net/http/pprof under /debug/pprof/ behind -pprof. The disabled
// path is benchmark-enforced: BenchmarkAnnealObsOverhead/off gates
// within 1% of the pre-observability baseline in CI, and the
// measured off/ring/export overhead table is in PERFORMANCE.md.
//
// # Fleet
//
// The daemon scales past one process. internal/store defines the
// persistence seam: a small blob Store contract (Put/Get/Delete/Keys
// with TTLs, one shared contract suite) with in-memory LRU and
// atomic-rename file backends, wrapped by typed adapters — a
// ResultCache keyed by the content-addressed request hash and a
// JobStore of terminal job records. The scheduler talks only to the
// interfaces; placed -store-dir mounts the file backends, so
// instances sharing a directory share solves (one daemon's result is
// the next one's cache hit) and job records survive restarts, with
// -instance prefixing job ids so replicas never collide. POST
// /v1/place:batch decodes and validates many problems as one unit
// and fans them into jobs, with identical items coalescing onto a
// single solve — correct by construction via the same hash. GET
// /v1/jobs/{id} with Accept: text/event-stream streams the solve
// live over SSE: flight-recorder events straight from the ring,
// progress snapshots, a final done event — observation without
// perturbation, determinism pins hold with streams attached.
// Admission is per-tenant: the X-API-Key header names the tenant,
// token buckets (placed -tenant-rate/-tenant-burst) shed over-quota
// submissions with 429 + Retry-After, queued work is dequeued
// weighted-fair across tenants, and /metrics breaks admitted,
// throttled and queue depth out per tenant. cmd/placeload drives the
// whole serve path with a seeded open-loop workload (synthetic
// instances, tenant mix, cold and cache-hit scenarios at 1/8/64
// clients) and emits benchjson, so cmd/benchtrend gates
// service-level throughput in CI against the checked-in
// BENCH_PR9.json exactly as it gates kernel benchmarks; the numbers
// are in PERFORMANCE.md.
package repro
