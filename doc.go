// Package repro reproduces "Analog Layout Synthesis — Recent Advances
// in Topological Approaches" (Graeb, Balasa, Castro-Lopez, Chang,
// Fernandez, Lin, Strasser; DATE 2009) as a self-contained Go library.
//
// The paper surveys four topological approaches to analog layout
// synthesis; this module implements all four from scratch, along with
// every substrate they rest on:
//
//   - Section II — symmetric-feasible sequence-pairs: internal/seqpair
//     (property (1), the search-space Lemma, O(n log log n) packing on
//     the van Emde Boas queue of internal/veb, and a symmetric
//     placement constructor), driven by internal/place.
//   - Section III — hierarchical placement: internal/hbstar
//     (HB*-trees with contour nodes) over internal/asf (ASF-B*-tree
//     symmetry islands) and internal/bstar, with the constraint model
//     of internal/constraint and automatic hierarchy detection in
//     internal/hier.
//   - Section IV — deterministic placement: internal/shapefn (shape
//     functions, enhanced shape additions, hierarchically bounded
//     enumeration) over internal/bstar enumeration; Table I runs on
//     the benchmark generators of internal/circuits.
//   - Section V — layout-aware sizing: internal/sizing over the
//     device model (internal/mos), analytic performance evaluation
//     (internal/perf), layout templates (internal/template) and
//     parasitic extraction (internal/extract).
//
// internal/core ties everything together behind one API and hosts the
// drivers that regenerate each table and figure; the benchmarks in
// this package (bench_test.go) exercise them. See DESIGN.md for the
// experiment index and EXPERIMENTS.md for measured results.
package repro
