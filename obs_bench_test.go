package repro

import (
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"repro/internal/obs"
	"repro/placer"
)

// ---------------------------------------------------------------------------
// PR 8 — observability overhead: the flight recorder and span tracer
// must be free when off and cheap when on.

// obsOverheadSchedule is the fixed-budget schedule the overhead
// benchmark anneals under: a pinned move and stage budget with no
// temperature floor or stall exit in range, so every iteration does
// bit-identical work and ns/op differences are instrumentation cost,
// not schedule drift.
func obsOverheadSchedule() placer.Schedule {
	return placer.Schedule{MovesPerStage: 100, MaxStages: 30, StallStages: 30, Cooling: 0.9}
}

// benchObsSolve runs the pinned n-module seq-pair anneal once per
// iteration with the given extra options appended.
func benchObsSolve(b *testing.B, n int, opts ...placer.Option) {
	b.Helper()
	p, err := placer.Synthetic(placer.SyntheticSpec{N: n, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	all := append([]placer.Option{
		placer.WithAlgorithm(placer.SeqPair),
		placer.WithSeed(7),
		placer.WithSchedule(obsOverheadSchedule()),
	}, opts...)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := placer.Solve(context.Background(), p, all...); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAnnealObsOverhead measures the n=1000 seq-pair anneal under
// the three observability postures: off (no tracing — the baseline the
// benchtrend gate pins against BENCH_PR7.json within 1%), ring (flight
// recorder attached), and export (flight recorder plus armed span
// tracer). The n=10000 cases feed the PERFORMANCE.md overhead table
// and only run when SCALE_BENCH_LARGE is set.
func BenchmarkAnnealObsOverhead(b *testing.B) {
	for _, n := range []int{1000, 10000} {
		if n >= 10000 && os.Getenv("SCALE_BENCH_LARGE") == "" {
			continue
		}
		b.Run(fmt.Sprintf("off/n=%d", n), func(b *testing.B) {
			benchObsSolve(b, n)
		})
		b.Run(fmt.Sprintf("ring/n=%d", n), func(b *testing.B) {
			benchObsSolve(b, n, placer.WithTrace(0))
		})
		b.Run(fmt.Sprintf("export/n=%d", n), func(b *testing.B) {
			obs.Enable()
			defer func() {
				obs.Disable()
				obs.ResetSpans()
			}()
			benchObsSolve(b, n, placer.WithTrace(0))
		})
	}
}

// TestObsRingOverheadBounded is an in-process guard behind the CI
// benchtrend gate: a paired off-vs-ring run of the n=200 anneal must
// not show the flight recorder costing more than 15% — way above its
// real cost (~0.1%, see PERFORMANCE.md) but tight enough to catch a
// recording hook leaking into the move loop's hot path. Skipped in
// -short runs; timing-based, so it takes the best of several trials.
func TestObsRingOverheadBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("timing-based guard; skipped with -short")
	}
	p, err := placer.Synthetic(placer.SyntheticSpec{N: 200, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	solve := func(opts ...placer.Option) time.Duration {
		all := append([]placer.Option{
			placer.WithAlgorithm(placer.SeqPair),
			placer.WithSeed(7),
			placer.WithSchedule(obsOverheadSchedule()),
		}, opts...)
		best := time.Duration(1<<63 - 1)
		for trial := 0; trial < 5; trial++ {
			start := time.Now()
			if _, err := placer.Solve(context.Background(), p, all...); err != nil {
				t.Fatal(err)
			}
			if d := time.Since(start); d < best {
				best = d
			}
		}
		return best
	}
	solve() // warm up caches and the allocator before timing
	off := solve()
	ring := solve(placer.WithTrace(0))
	if float64(ring) > float64(off)*1.15 {
		t.Fatalf("flight recorder overhead out of bounds: off %v, ring %v (>15%%)", off, ring)
	}
}
