package repro

import (
	"math/rand"
	"os"
	"testing"
	"time"

	"repro/internal/cost"
	"repro/internal/seqpair"
)

// TestIncrementalHPWLSmoke is the CI benchmark-smoke gate for the
// incremental objective: on the n = 1000 sequence-pair bench it fails
// if incremental dirty-net HPWL evaluation is slower than full
// recompute. Sequence-pair moves are the incremental engine's worst
// case — one sequence swap repacks and displaces a large fraction of
// the modules — so this bounds the regression risk from below while
// BenchmarkIncrementalDirtyNet documents the headline speedup.
//
// Timing-based, so it only runs when BENCH_SMOKE is set (the CI
// workflow sets it in a dedicated step); plain `go test ./...` skips
// it to stay noise-free.
func TestIncrementalHPWLSmoke(t *testing.T) {
	if os.Getenv("BENCH_SMOKE") == "" {
		t.Skip("set BENCH_SMOKE=1 to run the incremental-evaluation timing gate")
	}
	const n, moves = 1000, 200
	rng := rand.New(rand.NewSource(1))
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		h[i] = 1 + rng.Intn(50)
	}
	var nets [][]int
	for len(nets) < 2*n {
		deg := 3 + rng.Intn(4)
		net := make([]int, 0, deg)
		for len(net) < deg {
			net = append(net, rng.Intn(n))
		}
		nets = append(nets, net)
	}

	// run replays an identical sequence-pair move walk and returns the
	// time spent in cost evaluation alone (packing is identical in
	// both modes and would only bury the difference in noise).
	run := func(full bool) time.Duration {
		mrng := rand.New(rand.NewSource(7))
		sp := seqpair.New(n)
		sp.Shuffle(mrng)
		var ws seqpair.PackWorkspace
		model := cost.NewModel(n).Add(1, cost.NewArea()).Add(1, cost.NewHPWL(nets))
		x, y := sp.PackInto(&ws, w, h)
		model.Eval(x, y, w, h, nil)
		var elapsed time.Duration
		for i := 0; i < moves; i++ {
			a, b := mrng.Intn(n), mrng.Intn(n-1)
			if b >= a {
				b++
			}
			if mrng.Intn(2) == 0 {
				sp.SwapAlpha(a, b)
			} else {
				sp.SwapBeta(a, b)
			}
			x, y = sp.PackInto(&ws, w, h)
			start := time.Now()
			if full {
				model.Eval(x, y, w, h, nil)
			} else {
				model.Update(x, y, w, h, nil)
			}
			elapsed += time.Since(start)
		}
		return elapsed
	}

	// Interleave the rounds (full, incremental, full, ...) so a burst
	// of machine load hits both modes, and keep the best of five per
	// mode.
	const rounds = 5
	fullT := time.Duration(1<<62 - 1)
	incT := fullT
	for round := 0; round < rounds; round++ {
		if d := run(true); d < fullT {
			fullT = d
		}
		if d := run(false); d < incT {
			incT = d
		}
	}
	t.Logf("n=%d seq-pair bench, %d moves: full %v, incremental %v (%.2fx)",
		n, moves, fullT, incT, float64(fullT)/float64(incT))
	// The gate is "not slower", not a speedup target
	// (BenchmarkIncrementalDirtyNet covers that); 25% allowance keeps
	// shared-runner scheduling noise from failing a correct build
	// while still catching any real inversion.
	if incT > fullT+fullT/4 {
		t.Fatalf("incremental HPWL evaluation slower than full recompute: %v > %v", incT, fullT)
	}
}
