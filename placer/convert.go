package placer

import (
	"fmt"

	"repro/internal/circuits"
	"repro/internal/constraint"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/seqpair"
)

// flat converts the problem into the placement problem the flat
// engines (sequence-pair, B*-tree, TCG, slicing, absolute) consume.
func (p *Problem) flat() (*place.Problem, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	n := len(p.Modules)
	pp := &place.Problem{
		Names:         make([]string, n),
		W:             make([]int, n),
		H:             make([]int, n),
		Nets:          cloneIDLists(p.Nets),
		ProxGroups:    cloneIDLists(p.Proximity),
		AreaWeight:    p.Objective.AreaWeight,
		WireWeight:    p.Objective.WireWeight,
		OutlineW:      p.Objective.OutlineW,
		OutlineH:      p.Objective.OutlineH,
		OutlineWeight: p.Objective.OutlineWeight,
		ProxWeight:    p.Objective.ProxWeight,
		ThermalWeight: p.Objective.ThermalWeight,
		ThermalSigma:  p.Objective.ThermalSigma,
		Power:         append([]float64(nil), p.Power...),
	}
	for i, m := range p.Modules {
		pp.Names[i] = m.Name
		pp.W[i] = m.W
		pp.H[i] = m.H
	}
	for _, g := range p.Symmetry {
		pp.Groups = append(pp.Groups, seqpair.Group{
			Pairs: clonePairs(g.Pairs),
			Selfs: append([]int(nil), g.Selfs...),
		})
	}
	if len(pp.Groups) == 0 && p.Hierarchy != nil {
		// Symmetry spelled only in the hierarchy still binds the flat
		// engines: derive device-level groups exactly as
		// place.FromBench does from a bench tree (pairs naming child
		// nodes rather than modules cannot be expressed flat and are
		// skipped, as there).
		id := make(map[string]int, len(p.Modules))
		for i, m := range p.Modules {
			id[m.Name] = i
		}
		pp.Groups = append(pp.Groups, hierarchyGroups(p.Hierarchy, id)...)
	}
	if err := pp.Validate(); err != nil {
		return nil, err
	}
	return pp, nil
}

// hierarchyGroups collects the device-level symmetry groups of a
// hierarchy: one group per symmetry node, members resolved through
// the module-name index.
func hierarchyGroups(nd *Node, id map[string]int) []seqpair.Group {
	var groups []seqpair.Group
	if nd.Kind == KindSymmetry {
		g := seqpair.Group{}
		for _, pr := range nd.Pairs {
			a, oka := id[pr[0]]
			b, okb := id[pr[1]]
			if oka && okb {
				g.Pairs = append(g.Pairs, [2]int{a, b})
			}
		}
		for _, s := range nd.Selfs {
			if m, ok := id[s]; ok {
				g.Selfs = append(g.Selfs, m)
			}
		}
		if g.Size() > 0 {
			groups = append(groups, g)
		}
	}
	for _, c := range nd.Children {
		groups = append(groups, hierarchyGroups(c, id)...)
	}
	return groups
}

// kindValues maps hierarchy kind strings to constraint kinds.
var kindValues = map[string]constraint.Kind{
	KindNone:           constraint.KindNone,
	KindSymmetry:       constraint.KindSymmetry,
	KindCommonCentroid: constraint.KindCommonCentroid,
	KindProximity:      constraint.KindProximity,
}

// kindNames is the inverse of kindValues.
var kindNames = map[constraint.Kind]string{
	constraint.KindNone:           KindNone,
	constraint.KindSymmetry:       KindSymmetry,
	constraint.KindCommonCentroid: KindCommonCentroid,
	constraint.KindProximity:      KindProximity,
}

func toConstraintNode(nd *Node) *constraint.Node {
	n := &constraint.Node{
		Name:     nd.Name,
		Kind:     kindValues[nd.Kind],
		Devices:  append([]string(nil), nd.Devices...),
		SymPairs: append([][2]string(nil), nd.Pairs...),
		SymSelfs: append([]string(nil), nd.Selfs...),
	}
	if nd.Units != nil {
		n.Units = make(map[string][]string, len(nd.Units))
		for k, v := range nd.Units {
			n.Units[k] = append([]string(nil), v...)
		}
	}
	for _, c := range nd.Children {
		n.Children = append(n.Children, toConstraintNode(c))
	}
	return n
}

func fromConstraintNode(n *constraint.Node) *Node {
	nd := &Node{
		Name:    n.Name,
		Kind:    kindNames[n.Kind],
		Devices: append([]string(nil), n.Devices...),
		Pairs:   append([][2]string(nil), n.SymPairs...),
		Selfs:   append([]string(nil), n.SymSelfs...),
	}
	if n.Units != nil {
		nd.Units = make(map[string][]string, len(n.Units))
		for k, v := range n.Units {
			nd.Units[k] = append([]string(nil), v...)
		}
	}
	for _, c := range n.Children {
		nd.Children = append(nd.Children, fromConstraintNode(c))
	}
	return nd
}

// bench materializes the problem as a benchmark circuit for the
// hierarchical engine: modules become block devices, nets become
// signal nets, and the hierarchy becomes the constraint tree. When
// the problem carries no hierarchy, one is synthesized from the flat
// constraints — a symmetry node per symmetry group, a proximity node
// per proximity group, everything else directly at the root — so any
// problem can be solved hierarchically. Modules the hierarchy does
// not mention are attached to the root.
func (p *Problem) bench() (*circuits.Bench, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	name := p.Name
	if name == "" {
		name = "wire"
	}
	c := netlist.NewCircuit(name)
	for _, m := range p.Modules {
		if err := c.Add(&netlist.Device{Name: m.Name, Type: netlist.Block, FW: m.W, FH: m.H}); err != nil {
			return nil, fmt.Errorf("placer: %v", err)
		}
	}
	var tree *constraint.Node
	if p.Hierarchy != nil {
		tree = toConstraintNode(p.Hierarchy)
	} else {
		tree = p.synthesizeTree(name)
	}
	attachUncovered(tree, p.Modules)
	nets := make(map[string][]string, len(p.Nets))
	for i, net := range p.Nets {
		devs := make([]string, len(net))
		for j, m := range net {
			devs[j] = p.Modules[m].Name
		}
		nets[fmt.Sprintf("net%d", i)] = devs
	}
	return &circuits.Bench{Name: name, Circuit: c, Tree: tree, Nets: nets}, nil
}

// synthesizeTree builds a one-level hierarchy from the flat symmetry
// and proximity groups.
func (p *Problem) synthesizeTree(name string) *constraint.Node {
	root := &constraint.Node{Name: name}
	for gi, g := range p.Symmetry {
		ch := &constraint.Node{
			Name: fmt.Sprintf("sym%d", gi),
			Kind: constraint.KindSymmetry,
		}
		for _, pr := range g.Pairs {
			a, b := p.Modules[pr[0]].Name, p.Modules[pr[1]].Name
			ch.Devices = append(ch.Devices, a, b)
			ch.SymPairs = append(ch.SymPairs, [2]string{a, b})
		}
		for _, s := range g.Selfs {
			n := p.Modules[s].Name
			ch.Devices = append(ch.Devices, n)
			ch.SymSelfs = append(ch.SymSelfs, n)
		}
		root.Children = append(root.Children, ch)
	}
	covered := make(map[int]bool)
	for _, g := range p.Symmetry {
		for _, pr := range g.Pairs {
			covered[pr[0]], covered[pr[1]] = true, true
		}
		for _, s := range g.Selfs {
			covered[s] = true
		}
	}
	for gi, grp := range p.Proximity {
		ch := &constraint.Node{
			Name: fmt.Sprintf("prox%d", gi),
			Kind: constraint.KindProximity,
		}
		for _, m := range grp {
			if covered[m] {
				continue // symmetry placement wins; proximity stays a soft cost
			}
			covered[m] = true
			ch.Devices = append(ch.Devices, p.Modules[m].Name)
		}
		if len(ch.Devices) >= 2 {
			root.Children = append(root.Children, ch)
		}
	}
	return root
}

// attachUncovered adds modules the tree does not own to the root, so
// the hierarchical engine places every module.
func attachUncovered(root *constraint.Node, modules []Module) {
	owned := make(map[string]bool)
	var walk func(n *constraint.Node)
	walk = func(n *constraint.Node) {
		for _, d := range n.Devices {
			owned[d] = true
		}
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	for _, m := range modules {
		if !owned[m.Name] {
			root.Devices = append(root.Devices, m.Name)
		}
	}
}

// fromBench ingests a benchmark circuit as a canonical problem: the
// flat view (modules, symmetry groups, nets, proximity groups)
// through place.FromBench — so the conventional area + HPWL objective
// is preserved — plus the design hierarchy, so the hierarchical
// engine sees the same tree a native run would. The result is
// normalized.
func fromBench(b *circuits.Bench) (*Problem, error) {
	pp, err := place.FromBench(b)
	if err != nil {
		return nil, err
	}
	p := fromPlace(b.Name, pp)
	if b.Tree != nil {
		p.Hierarchy = fromConstraintNode(b.Tree)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	p.Normalize()
	return p, nil
}

// fromPlace lifts a flat placement problem into the canonical form.
// The result is normalized.
func fromPlace(name string, pp *place.Problem) *Problem {
	p := &Problem{
		Name:    name,
		Modules: make([]Module, pp.N()),
		Objective: Objective{
			AreaWeight:    pp.AreaWeight,
			WireWeight:    pp.WireWeight,
			OutlineW:      pp.OutlineW,
			OutlineH:      pp.OutlineH,
			OutlineWeight: pp.OutlineWeight,
			ProxWeight:    pp.ProxWeight,
			ThermalWeight: pp.ThermalWeight,
			ThermalSigma:  pp.ThermalSigma,
		},
		Nets:      cloneIDLists(pp.Nets),
		Proximity: cloneIDLists(pp.ProxGroups),
		Power:     append([]float64(nil), pp.Power...),
	}
	for i := 0; i < pp.N(); i++ {
		p.Modules[i] = Module{Name: pp.Names[i], W: pp.W[i], H: pp.H[i]}
	}
	for _, g := range pp.Groups {
		p.Symmetry = append(p.Symmetry, SymGroup{
			Pairs: clonePairs(g.Pairs),
			Selfs: append([]int(nil), g.Selfs...),
		})
	}
	p.Normalize()
	return p
}
