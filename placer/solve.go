package placer

import (
	"context"
	"fmt"
	"math"
	"runtime/debug"
	"sort"
	"sync"
	"time"

	"repro/internal/anneal"
	"repro/internal/cost"
	"repro/internal/geom"
	"repro/internal/obs"
)

// Default annealing schedule, written explicitly into a zero Schedule
// by Solve. It is the one definition shared with the wire format
// (whose canonical encoding spells it out) and the CLI.
const (
	DefaultMovesPerStage = 150
	DefaultMaxStages     = 200
	DefaultStallStages   = 40
	DefaultCooling       = 0.95
)

// DefaultAlgorithm is what Solve runs when no WithAlgorithm or
// WithPortfolio option is given.
const DefaultAlgorithm = SeqPair

// Schedule tunes the annealing schedule. Zero fields mean the
// defaults above; zero InitialTemp/MinTemp mean per-problem
// calibration.
type Schedule struct {
	MovesPerStage int
	MaxStages     int
	StallStages   int
	Cooling       float64
	InitialTemp   float64
	MinTemp       float64
}

// normalize writes the defaults explicitly.
func (s *Schedule) normalize() {
	if s.MovesPerStage == 0 {
		s.MovesPerStage = DefaultMovesPerStage
	}
	if s.MaxStages == 0 {
		s.MaxStages = DefaultMaxStages
	}
	if s.StallStages == 0 {
		s.StallStages = DefaultStallStages
	}
	if s.Cooling == 0 {
		s.Cooling = DefaultCooling
	}
}

// validate rejects schedules that cannot run.
func (s *Schedule) validate() error {
	if s.MovesPerStage < 0 || s.MaxStages < 0 || s.StallStages < 0 {
		return fmt.Errorf("placer: negative schedule option")
	}
	if s.Cooling < 0 || s.Cooling >= 1 {
		return fmt.Errorf("placer: cooling %v outside (0,1)", s.Cooling)
	}
	for _, v := range []float64{s.Cooling, s.InitialTemp, s.MinTemp} {
		if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("placer: schedule option %v is not a finite non-negative number", v)
		}
	}
	if s.InitialTemp > 0 && s.MinTemp >= s.InitialTemp {
		// The schedule would run zero stages and hand back the random
		// initial placement as a "solved" result.
		return fmt.Errorf("placer: MinTemp %v not below InitialTemp %v", s.MinTemp, s.InitialTemp)
	}
	return nil
}

// Progress is one streamed annealing snapshot: engines report after
// every completed temperature stage, from every multi-start chain
// (Worker) and — under WithPortfolio — every racing algorithm. The
// callback runs on the annealing goroutines, so it must be cheap and
// safe for concurrent calls.
type Progress struct {
	// Algorithm that produced the snapshot.
	Algorithm string
	// Worker identifies the multi-start chain (0 for serial runs).
	Worker int
	// Stage counts completed temperature stages of that chain.
	Stage int
	// Moves, Accepted and Improved count proposed, accepted and
	// incumbent-improving moves so far (cumulative per chain).
	Moves    int
	Accepted int
	Improved int
	// Temp is the temperature after the reported stage.
	Temp float64
	// Best is the lowest cost the chain has seen so far.
	Best float64
}

// Checkpointer persists best-so-far solver state across solve
// attempts: Save receives the engine's opaque best-state snapshot
// (periodically during the run and at the end, cancelled runs
// included) and Load hands a previously saved snapshot back to warm-
// start the next solve of the same problem. Snapshots are only
// meaningful to the algorithm that produced them — both methods carry
// the algorithm name, and under WithPortfolio every racer checkpoints
// under its own — and to the same problem; the service keys stores by
// the wire content hash, which pins both. Implementations must be
// safe for concurrent use: multi-start chains and portfolio racers
// save concurrently.
type Checkpointer interface {
	Save(algorithm string, snapshot any, cost float64, stage int)
	Load(algorithm string) (snapshot any, cost float64, ok bool)
}

// EngineOptions are the resolved solver knobs an Engine receives from
// Solve: defaults already applied, never nil-ambiguous.
type EngineOptions struct {
	Seed     int64
	Workers  int
	Schedule Schedule
	// TemperChains/ExchangeEvery select parallel tempering (see
	// WithTempering). TemperChains ≤ 1 means no tempering.
	TemperChains  int
	ExchangeEvery int
	// Progress, when non-nil, streams per-stage snapshots.
	Progress func(Progress)
	// AdaptiveMoves enables the engine kernel's acceptance-rate-
	// weighted move portfolio (see WithAdaptiveMoves).
	AdaptiveMoves bool
	// Checkpoint, when non-nil, saves and resumes best-so-far solver
	// state (see WithCheckpoint).
	Checkpoint Checkpointer

	// flight is the solve's flight recorder (see WithTrace), threaded
	// to the annealing engines through annealOptions. It is unexported
	// so the internal recorder type never leaks into the public API:
	// Solve owns the recorder's lifecycle, and external engines —
	// which build no annealOptions — simply record nothing.
	flight *obs.Flight
}

// annealOptions maps the engine options onto the annealing engine's,
// threading the context and tagging progress with the algorithm name.
func (o EngineOptions) annealOptions(ctx context.Context, algorithm string) anneal.Options {
	var sink func(anneal.Stats)
	if o.Progress != nil {
		progress := o.Progress
		sink = func(st anneal.Stats) {
			progress(Progress{
				Algorithm: algorithm,
				Worker:    st.Worker,
				Stage:     st.Stages,
				Moves:     st.Moves,
				Accepted:  st.Accepted,
				Improved:  st.Improved,
				Temp:      st.FinalTemp,
				Best:      st.BestCost,
			})
		}
	}
	aopt := anneal.Options{
		Seed:          o.Seed,
		Workers:       o.Workers,
		TemperChains:  o.TemperChains,
		ExchangeEvery: o.ExchangeEvery,
		MovesPerStage: o.Schedule.MovesPerStage,
		MaxStages:     o.Schedule.MaxStages,
		StallStages:   o.Schedule.StallStages,
		Cooling:       o.Schedule.Cooling,
		InitialTemp:   o.Schedule.InitialTemp,
		MinTemp:       o.Schedule.MinTemp,
		Context:       ctx,
		Progress:      sink,
		Flight:        o.flight,
	}
	if cp := o.Checkpoint; cp != nil {
		aopt.Checkpoint = func(snapshot any, cost float64, stage int) {
			cp.Save(algorithm, snapshot, cost, stage)
		}
		aopt.Resume = func() (any, bool) {
			snapshot, _, ok := cp.Load(algorithm)
			return snapshot, ok
		}
	}
	return aopt
}

// Placed is one module of a solved placement.
type Placed struct {
	Name string
	X, Y int
	W, H int
}

// TermCost is one objective term's share of a result's cost:
// Cost = Weight × Value, and the shares sum to Result.Cost exactly.
type TermCost struct {
	Name   string
	Weight float64
	Value  float64
	Cost   float64
}

// Result is a solved placement.
type Result struct {
	// Algorithm that produced the winning placement (under
	// WithPortfolio: the race winner).
	Algorithm string
	// Cost is the final composite objective value.
	Cost float64
	// Breakdown decomposes Cost per objective term (area, hpwl,
	// outline, proximity, thermal, plus engine-specific terms such as
	// the absolute engine's overlap penalty or the hierarchical
	// engine's proximity-frag count).
	Breakdown []TermCost
	// BBoxW/BBoxH is the placement bounding box; AreaUsage is module
	// area over bounding-box area; Legal reports the placement
	// overlap-free.
	BBoxW, BBoxH int
	AreaUsage    float64
	Legal        bool
	// Violations lists remaining constraint violations against the
	// problem's full constraint set (symmetry included, whether or not
	// the representation enforced it by construction).
	Violations []string
	// Cancelled reports the run stopped on ctx cancellation or
	// WithDeadline expiry; the placement is the best seen so far.
	// Under WithPortfolio it is set if any racer was truncated, even
	// when the winner ran to completion.
	Cancelled bool
	// Stages and Moves count annealing work (under WithPortfolio and
	// multi-start: summed across racers and chains).
	Stages, Moves int
	// Runtime is the solve wall-clock.
	Runtime time.Duration
	// Trace is the solve's flight recording (see WithTrace); nil when
	// tracing was not requested. Under WithPortfolio it is the winning
	// racer's recording.
	Trace *Trace
	// EngineTraces holds every racer's recording under WithPortfolio —
	// winner included, in racing order, each bounded to its newest
	// MaxEngineTraceEvents events — so losing representations remain
	// inspectable (why did seqpair beat slicing here?). Nil outside
	// portfolio mode or when tracing was not requested.
	EngineTraces []*Trace
	// Placement lists modules in problem order, so equal results mean
	// identical placements.
	Placement []Placed
}

// config is the resolved option set.
type config struct {
	algorithm     string
	portfolio     bool
	workers       int
	seed          int64
	schedule      Schedule
	progress      func(Progress)
	deadline      time.Time
	adaptive      bool
	checkpoint    Checkpointer
	temperChains  int
	exchangeEvery int
	trace         bool
	traceEvents   int
	recorder      *obs.Flight
}

// Option configures Solve.
type Option func(*config)

// WithAlgorithm selects a registered algorithm by name (default
// seqpair). It overrides an earlier WithPortfolio, and vice versa —
// the last selection option wins.
func WithAlgorithm(name string) Option {
	return func(c *config) {
		c.algorithm = name
		c.portfolio = false
	}
}

// WithPortfolio races every portfolio-eligible flat engine (see
// PortfolioAlgorithms) on the problem concurrently and keeps the
// winner: fewest constraint violations first, then lowest cost, then
// racing order — so a symmetry-constrained problem is never "won" by
// a representation that ignored its symmetry groups, and the choice
// is deterministic.
func WithPortfolio() Option {
	return func(c *config) { c.portfolio = true }
}

// WithWorkers runs n parallel multi-start annealing chains per engine
// (worker 0 replicates the serial chain, so multi-start never loses
// to serial). Under WithPortfolio the budget is split across the
// racers. Values below 1 mean 1.
func WithWorkers(n int) Option {
	return func(c *config) { c.workers = n }
}

// WithSeed seeds the annealing RNGs; equal seeds give bit-identical
// runs.
func WithSeed(seed int64) Option {
	return func(c *config) { c.seed = seed }
}

// WithTempering runs parallel tempering (replica exchange) instead of
// independent multi-start: chains annealing chains run at a geometric
// temperature ladder (chain 0 coldest) and every exchangeEvery stages
// neighboring chains attempt a Metropolis-accepted state swap, so
// discoveries made at high temperature migrate down the ladder. With
// exchangeEvery ≤ 0 exchanges are disabled and the run is
// bit-identical to WithWorkers(chains) multi-start — chain 0 still
// replicates the serial chain, so tempering never loses to serial.
// chains ≤ 1 disables tempering entirely. When both WithTempering and
// WithWorkers are given, tempering wins (the chains are the
// parallelism); under WithPortfolio every racer tempers with the same
// parameters. See PERFORMANCE.md's PR 7 section for when this pays:
// on the n ≥ 10⁴ synthetic instances it reaches the best multi-start
// cost in a fraction of the wall-clock for the same chain budget.
func WithTempering(chains, exchangeEvery int) Option {
	return func(c *config) {
		c.temperChains = chains
		c.exchangeEvery = exchangeEvery
	}
}

// WithSchedule tunes the annealing schedule (zero fields keep the
// defaults).
func WithSchedule(s Schedule) Option {
	return func(c *config) { c.schedule = s }
}

// WithProgress streams per-stage annealing snapshots to fn while the
// solve runs. fn is called from the annealing goroutines (one per
// chain and racer), so it must be cheap and concurrency-safe.
func WithProgress(fn func(Progress)) Option {
	return func(c *config) { c.progress = fn }
}

// WithDeadline bounds the solve wall-clock: past t the run cancels at
// the next annealing stage boundary and returns the best-so-far
// placement with Result.Cancelled set. It composes with (and never
// extends) a deadline already on ctx.
func WithDeadline(t time.Time) Option {
	return func(c *config) { c.deadline = t }
}

// WithAdaptiveMoves enables the engine kernel's adaptive move
// portfolio: move kinds are proposed with probability proportional to
// their observed acceptance rate instead of the representation's fixed
// distribution, so the search shifts effort toward moves the current
// temperature regime still accepts. It applies to flat engines whose
// representation exposes a move table (seqpair, slicing, absolute and
// the genetic variants); other engines ignore it. Default off — the
// fixed distributions are the bit-reproducible historical behavior, so
// runs with adaptive moves are deterministic for a seed but not
// comparable to runs without.
func WithAdaptiveMoves() Option {
	return func(c *config) { c.adaptive = true }
}

// WithCheckpoint persists best-so-far solver state through cp: the
// engines periodically save their best snapshot while annealing (and
// always at the end, so a run cancelled by ctx or WithDeadline leaves
// its latest best behind), and a later Solve of the same problem with
// the same cp warm-starts from the saved state instead of a cold
// random placement — under multi-start, on the serial-equivalent
// chain, so the resumed run is never worse than the checkpoint.
// Engines without an in-place annealing phase ignore it.
func WithCheckpoint(cp Checkpointer) Option {
	return func(c *config) { c.checkpoint = cp }
}

// Solve places the problem. The problem is validated and a normalized
// copy is solved (the caller's struct is never modified), so any two
// spellings of one semantic problem solve identically. Cancellation —
// ctx or WithDeadline — lands at annealing stage boundaries and
// returns the best placement found so far with Result.Cancelled set.
func Solve(ctx context.Context, p *Problem, opts ...Option) (*Result, error) {
	cfg := config{algorithm: DefaultAlgorithm, workers: 1}
	for _, o := range opts {
		o(&cfg)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if cfg.workers < 1 {
		cfg.workers = 1
	}
	if cfg.temperChains < 0 {
		cfg.temperChains = 0
	}
	if cfg.exchangeEvery < 0 {
		cfg.exchangeEvery = 0
	}
	cfg.schedule.normalize()
	if err := cfg.schedule.validate(); err != nil {
		return nil, err
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	np := p.Clone()
	np.Normalize()
	if !cfg.deadline.IsZero() {
		var cancel context.CancelFunc
		ctx, cancel = context.WithDeadline(ctx, cfg.deadline)
		defer cancel()
	}
	start := time.Now()
	res, err := solveConfigured(ctx, np, cfg)
	if err != nil {
		return nil, err
	}
	if res.Stages == 0 && !res.Cancelled {
		// A degenerate schedule (e.g. MinTemp above the calibrated
		// initial temperature, which static validation cannot see)
		// would hand back the random initial placement as if it were
		// solved.
		return nil, fmt.Errorf("placer: schedule ran zero annealing stages; check MinTemp against the (calibrated) initial temperature")
	}
	res.Runtime = time.Since(start)
	return res, nil
}

// solveConfigured dispatches one normalized problem: the portfolio
// race, or a single registry engine.
func solveConfigured(ctx context.Context, p *Problem, cfg config) (*Result, error) {
	if cfg.portfolio {
		return solvePortfolio(ctx, p, cfg)
	}
	factory, ok := Lookup(cfg.algorithm)
	if !ok {
		return nil, ErrUnknownAlgorithm(cfg.algorithm)
	}
	eo := cfg.engineOptions()
	ctx, span := obs.StartSpan(ctx, "engine", obs.KV("algorithm", cfg.algorithm))
	res, err := factory().Solve(ctx, p, eo)
	span.End()
	if err == nil && eo.flight != nil {
		res.Trace = traceFromFlight(cfg.algorithm, eo.flight)
	}
	return res, err
}

func (c config) engineOptions() EngineOptions {
	eo := EngineOptions{
		Seed:          c.seed,
		Workers:       c.workers,
		Schedule:      c.schedule,
		TemperChains:  c.temperChains,
		ExchangeEvery: c.exchangeEvery,
		Progress:      c.progress,
		AdaptiveMoves: c.adaptive,
		Checkpoint:    c.checkpoint,
	}
	switch {
	case c.recorder != nil:
		eo.flight = c.recorder
	case c.trace:
		eo.flight = obs.NewFlight(c.traceEvents)
	}
	return eo
}

// solvePortfolio races the portfolio-eligible flat engines on the
// same problem concurrently — each chain honors ctx, so one
// cancellation stops the whole race — and keeps the winner under the
// deterministic feasibility-first ranking of WithPortfolio.
func solvePortfolio(ctx context.Context, p *Problem, cfg config) (*Result, error) {
	racers := PortfolioAlgorithms()
	if len(racers) == 0 {
		return nil, fmt.Errorf("placer: no portfolio-eligible algorithms registered")
	}
	type entry struct {
		res *Result
		err error
	}
	results := make([]entry, len(racers))
	// The racers split the caller's worker budget rather than each
	// claiming it, so portfolio mode cannot multiply a worker ceiling
	// by the racer count.
	racerCfg := cfg
	racerCfg.workers = max(1, cfg.workers/len(racers))
	// A caller-owned recorder is never shared across racers: their
	// interleaved events would destroy per-racer trace determinism.
	// Each racer gets a private ring of the same capacity instead (see
	// WithRecorder); engineOptions allocates it per racer below.
	racerCfg.recorder = nil
	var wg sync.WaitGroup
	wg.Add(len(racers))
	for i, name := range racers {
		go func(i int, name string) {
			defer wg.Done()
			defer func() {
				// One racer's panic fails that racer, not the caller's
				// process-wide run.
				if r := recover(); r != nil {
					results[i] = entry{nil, fmt.Errorf("placer: %s racer panic: %v\n%s", name, r, debug.Stack())}
				}
			}()
			factory, ok := Lookup(name)
			if !ok {
				results[i] = entry{nil, ErrUnknownAlgorithm(name)}
				return
			}
			// Every racer records into its own ring; the winner's
			// recording survives on the returned result.
			eo := racerCfg.engineOptions()
			rctx, span := obs.StartSpan(ctx, "engine", obs.KV("algorithm", name))
			res, err := factory().Solve(rctx, p, eo)
			span.End()
			if err == nil && eo.flight != nil {
				res.Trace = traceFromFlight(name, eo.flight)
			}
			results[i] = entry{res, err}
		}(i, name)
	}
	wg.Wait()

	order := make([]int, 0, len(results))
	var firstErr error
	for i, e := range results {
		if e.err != nil {
			if firstErr == nil {
				firstErr = e.err
			}
			continue
		}
		order = append(order, i)
	}
	if len(order) == 0 {
		return nil, fmt.Errorf("placer: every portfolio racer failed: %v", firstErr)
	}
	sort.SliceStable(order, func(a, b int) bool {
		ra, rb := results[order[a]].res, results[order[b]].res
		if len(ra.Violations) != len(rb.Violations) {
			return len(ra.Violations) < len(rb.Violations)
		}
		if ra.Cost != rb.Cost {
			return ra.Cost < rb.Cost
		}
		return order[a] < order[b]
	})
	win := results[order[0]].res
	if win.Stages == 0 && !win.Cancelled {
		// Checked on the winner's own counters, before loser
		// aggregation can mask it: a zero-stage winner is its random
		// initial placement, not a solved one (see Solve's guard).
		return nil, fmt.Errorf("placer: portfolio winner %s ran zero annealing stages; check MinTemp against the (calibrated) initial temperature", win.Algorithm)
	}
	// Aggregate race-wide counters so progress and result agree on the
	// total work done — and the race-wide cancellation: if any racer
	// was truncated, the race is not the full deterministic race, so
	// the result must be flagged cancelled (and, in the service, never
	// cached), even when the winning racer itself ran to completion.
	for _, i := range order[1:] {
		win.Stages += results[i].res.Stages
		win.Moves += results[i].res.Moves
		if results[i].res.Cancelled {
			win.Cancelled = true
		}
	}
	// Retain every racer's recording (winner included) in racing
	// order, each capped — the winner's full trace is already on
	// win.Trace; EngineTraces is the bounded race post-mortem.
	if cfg.trace {
		for i := range results {
			if results[i].err == nil && results[i].res.Trace != nil {
				win.EngineTraces = append(win.EngineTraces, truncateTrace(results[i].res.Trace, MaxEngineTraceEvents))
			}
		}
	}
	return win, nil
}

// newResult assembles the common result fields from a named
// placement; violations are the caller's to append.
func newResult(p *Problem, algorithm string, pl geom.Placement, costVal float64, stats anneal.Stats, breakdown []cost.TermValue) *Result {
	bb := pl.BBox()
	out := &Result{
		Algorithm: algorithm,
		Cost:      costVal,
		BBoxW:     bb.W,
		BBoxH:     bb.H,
		AreaUsage: pl.AreaUsage(),
		Legal:     pl.Legal(),
		Cancelled: stats.Cancelled,
		Stages:    stats.Stages,
		Moves:     stats.Moves,
	}
	for _, tv := range breakdown {
		out.Breakdown = append(out.Breakdown, TermCost{
			Name:   tv.Name,
			Weight: tv.Weight,
			Value:  tv.Value,
			Cost:   tv.Weight * tv.Value,
		})
	}
	for _, m := range p.Modules {
		if r, ok := pl[m.Name]; ok {
			out.Placement = append(out.Placement, Placed{Name: m.Name, X: r.X, Y: r.Y, W: r.W, H: r.H})
		}
	}
	return out
}
