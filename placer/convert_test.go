package placer

import (
	"testing"

	"repro/internal/circuits"
)

func testProblem() *Problem {
	return &Problem{
		Name: "toy",
		Modules: []Module{
			{Name: "A", W: 4, H: 2}, {Name: "B", W: 4, H: 2},
			{Name: "C", W: 3, H: 3}, {Name: "D", W: 5, H: 1},
		},
		Symmetry:  []SymGroup{{Pairs: [][2]int{{0, 1}}}},
		Nets:      [][]int{{0, 2}, {1, 3}},
		Proximity: [][]int{{2, 3}},
		Objective: Objective{AreaWeight: 1, WireWeight: 1},
	}
}

func TestFlatConversion(t *testing.T) {
	p := testProblem()
	pp, err := p.flat()
	if err != nil {
		t.Fatal(err)
	}
	if pp.N() != 4 || len(pp.Groups) != 1 || len(pp.Nets) != 2 {
		t.Fatalf("conversion lost structure: %+v", pp)
	}
	if pp.WireWeight != 1 || len(pp.ProxGroups) != 1 {
		t.Fatalf("objective or proximity lost: %+v", pp)
	}
	// And back: lifting the flat problem recovers the same canonical
	// value (modulo the hierarchy, which a flat problem cannot carry).
	q := fromPlace(p.Name, pp)
	n := p.Clone()
	n.Normalize()
	if len(q.Modules) != len(n.Modules) || len(q.Symmetry) != len(n.Symmetry) ||
		len(q.Nets) != len(n.Nets) || len(q.Proximity) != len(n.Proximity) {
		t.Fatalf("flat round-trip lost structure:\n got %+v\nwant %+v", q, n)
	}
}

func TestBenchmarkMiller(t *testing.T) {
	p, err := Benchmark("miller")
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Modules) != 9 {
		t.Fatalf("miller has 9 modules, got %d", len(p.Modules))
	}
	if len(p.Symmetry) != 2 {
		t.Fatalf("miller has 2 device-level symmetry groups, got %d", len(p.Symmetry))
	}
	if p.Hierarchy == nil {
		t.Fatal("hierarchy lost")
	}
	if p.Objective.WireWeight != 1 {
		t.Fatalf("conventional objective lost: %+v", p.Objective)
	}
	// The hierarchy must survive the bench round-trip well enough for
	// the hierarchical engine: same proximity groups, same leaves.
	b, err := p.bench()
	if err != nil {
		t.Fatal(err)
	}
	if got, want := len(b.Tree.ProximityGroups()), len(circuits.MillerOpAmp().Tree.ProximityGroups()); got != want {
		t.Fatalf("proximity groups: got %d want %d", got, want)
	}
	if got, want := len(b.Tree.Leaves()), len(circuits.MillerOpAmp().Tree.Leaves()); got != want {
		t.Fatalf("tree leaves: got %d want %d", got, want)
	}
	if _, err := Benchmark("no-such-bench"); err == nil {
		t.Fatal("unknown benchmark accepted")
	}
}

// TestHierarchyOnlySymmetryBindsFlat: symmetry spelled only in the
// hierarchy must still constrain the flat engines.
func TestHierarchyOnlySymmetryBindsFlat(t *testing.T) {
	p := testProblem()
	p.Symmetry = nil
	p.Hierarchy = &Node{
		Name: "root",
		Children: []*Node{
			{Name: "dp", Kind: KindSymmetry, Devices: []string{"A", "B"},
				Pairs: [][2]string{{"A", "B"}}},
		},
		Devices: []string{"C", "D"},
	}
	pp, err := p.flat()
	if err != nil {
		t.Fatal(err)
	}
	if len(pp.Groups) != 1 || len(pp.Groups[0].Pairs) != 1 {
		t.Fatalf("hierarchy symmetry not derived: %+v", pp.Groups)
	}
	// Explicit flat groups win over derivation (no double counting).
	q := testProblem()
	q.Hierarchy = p.Hierarchy.Clone()
	qq, err := q.flat()
	if err != nil {
		t.Fatal(err)
	}
	if len(qq.Groups) != 1 {
		t.Fatalf("flat symmetry should not be doubled by the hierarchy: %+v", qq.Groups)
	}
}

func TestBenchSynthesizedHierarchy(t *testing.T) {
	p := testProblem() // no hierarchy
	b, err := p.bench()
	if err != nil {
		t.Fatal(err)
	}
	if b.Tree == nil {
		t.Fatal("no tree synthesized")
	}
	leaves := b.Tree.Leaves()
	if len(leaves) != len(p.Modules) {
		t.Fatalf("synthesized tree covers %d of %d modules", len(leaves), len(p.Modules))
	}
}
