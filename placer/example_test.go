package placer_test

import (
	"context"
	"fmt"
	"sync/atomic"
	"time"

	"repro/placer"
)

// The quickstart: build a Problem (here from a built-in benchmark),
// solve it with the default algorithm, and read the result.
func ExampleSolve() {
	p, err := placer.Benchmark("miller")
	if err != nil {
		panic(err)
	}
	res, err := placer.Solve(context.Background(), p, placer.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("%s placed %d modules: legal=%v, %d violations\n",
		res.Algorithm, len(res.Placement), res.Legal, len(res.Violations))
	for _, term := range res.Breakdown {
		fmt.Printf("  %s contributes %.4g\n", term.Name, term.Cost)
	}
	// Output:
	// seqpair placed 9 modules: legal=true, 0 violations
	//   area contributes 9360
	//   hpwl contributes 555
}

// Portfolio mode races the portfolio-eligible flat engines and keeps
// the winner under a deterministic feasibility-first ranking.
func ExampleSolve_portfolio() {
	p, err := placer.Benchmark("miller")
	if err != nil {
		panic(err)
	}
	res, err := placer.Solve(context.Background(), p,
		placer.WithPortfolio(), placer.WithSeed(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("raced %v; %s won with a legal=%v placement\n",
		placer.PortfolioAlgorithms(), res.Algorithm, res.Legal)
	// Output:
	// raced [seqpair bstar tcg]; seqpair won with a legal=true placement
}

// WithProgress streams one snapshot per completed annealing stage
// while the solve runs; WithDeadline bounds the wall-clock.
func ExampleSolve_progress() {
	p, err := placer.Benchmark("miller")
	if err != nil {
		panic(err)
	}
	var stages atomic.Int64
	res, err := placer.Solve(context.Background(), p,
		placer.WithAlgorithm(placer.HBStar),
		placer.WithSeed(1),
		placer.WithDeadline(time.Now().Add(time.Minute)),
		placer.WithProgress(func(pr placer.Progress) {
			stages.Add(1) // called concurrently from every chain
		}))
	if err != nil {
		panic(err)
	}
	fmt.Printf("streamed every stage: %v\n", int(stages.Load()) == res.Stages)
	fmt.Printf("finished without hitting the deadline: %v\n", !res.Cancelled)
	// Output:
	// streamed every stage: true
	// finished without hitting the deadline: true
}
