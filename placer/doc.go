// Package placer is the public front door of this repository: analog
// placement with symmetry, proximity and thermal constraints behind
// one canonical [Problem], one [Solve] call, and a self-registration
// algorithm registry shared by every consumer (the analogplace CLI,
// the placed daemon's wire format, and this package's own examples).
//
// # Quickstart
//
// Build a Problem (directly, or from a built-in [Benchmark]) and
// solve it:
//
//	p, _ := placer.Benchmark("miller")
//	res, err := placer.Solve(ctx, p,
//		placer.WithAlgorithm(placer.HBStar),
//		placer.WithSeed(1))
//
// Solve validates the problem, solves a normalized copy (two
// spellings of one semantic problem place identically), and returns a
// [Result] carrying the placement in module order, the per-term cost
// breakdown, constraint violations and annealing statistics. Equal
// seeds give bit-identical results.
//
// # Algorithms and the registry
//
// Six engines self-register at init — the five flat placers (seqpair,
// bstar, tcg, slicing, absolute) and the hierarchical hbstar — and
// external backends join with [Register]. [Algorithms] enumerates the
// registry; it is the single source of truth behind WithAlgorithm,
// the portfolio set, `analogplace -algorithms` and the daemon's
// GET /v1/algorithms, so adding an engine needs no dispatch-switch
// edits anywhere.
//
// [WithPortfolio] races the portfolio-eligible flat engines
// concurrently and keeps the winner (feasibility first, then cost,
// then racing order — deterministic).
//
// # Cancellation and streaming
//
// Solve is context-first: ctx cancellation (or [WithDeadline]) stops
// the run at the next annealing stage boundary and returns the best
// placement found so far with Result.Cancelled set. [WithProgress]
// streams per-stage snapshots from every annealing chain while the
// solve runs.
//
// # Relation to the internal packages
//
// The package is a facade: engines run on internal/place and
// internal/hbstar, objectives on internal/cost, schedules on
// internal/anneal. internal/wire is the JSON transport encoding of
// [Problem] (wire.Problem.ToCanon / wire.FromCanon convert
// losslessly), and internal/service schedules Solve calls behind the
// HTTP daemon. See PERFORMANCE.md's "Public API" section for
// migration notes from the internal packages.
package placer
