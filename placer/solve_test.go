package placer_test

import (
	"strings"
	"sync"
	"testing"
	"time"

	"repro/placer"
)

// quick is a short but observable schedule for tests.
var quick = placer.WithSchedule(placer.Schedule{MovesPerStage: 40, MaxStages: 20, StallStages: 20})

func miller(t *testing.T) *placer.Problem {
	t.Helper()
	p, err := placer.Benchmark("miller")
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestSolveDefaultAlgorithm: the zero option set runs seqpair.
func TestSolveDefaultAlgorithm(t *testing.T) {
	res, err := placer.Solve(t.Context(), miller(t), quick, placer.WithSeed(1))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != placer.DefaultAlgorithm {
		t.Fatalf("default ran %q, want %q", res.Algorithm, placer.DefaultAlgorithm)
	}
	if res.Stages == 0 || len(res.Placement) != 9 || !res.Legal {
		t.Fatalf("implausible result: %+v", res)
	}
	if res.Runtime <= 0 {
		t.Error("no runtime recorded")
	}
}

// TestSolveLastSelectionWins: WithAlgorithm and WithPortfolio
// override each other, last one wins.
func TestSolveLastSelectionWins(t *testing.T) {
	res, err := placer.Solve(t.Context(), miller(t), quick, placer.WithSeed(1),
		placer.WithPortfolio(), placer.WithAlgorithm(placer.BStar))
	if err != nil {
		t.Fatal(err)
	}
	if res.Algorithm != placer.BStar {
		t.Fatalf("ran %q, want bstar (WithAlgorithm given last)", res.Algorithm)
	}
}

// TestSolveDoesNotMutateCaller: Solve normalizes a copy; the caller's
// problem keeps its spelling.
func TestSolveDoesNotMutateCaller(t *testing.T) {
	p := miller(t)
	p.Nets[0][0], p.Nets[0][1] = p.Nets[0][1], p.Nets[0][0] // de-normalize
	p.Objective.AreaWeight = 0
	before := *p.Clone()
	if _, err := placer.Solve(t.Context(), p, quick, placer.WithSeed(1)); err != nil {
		t.Fatal(err)
	}
	if p.Nets[0][0] != before.Nets[0][0] || p.Objective.AreaWeight != 0 {
		t.Fatalf("Solve mutated the caller's problem: %+v", p.Nets[0])
	}
}

// TestSolveProgressStreams: WithProgress receives per-stage snapshots
// tagged with the algorithm, monotonically covering the whole run.
func TestSolveProgressStreams(t *testing.T) {
	var mu sync.Mutex
	var snaps []placer.Progress
	res, err := placer.Solve(t.Context(), miller(t), quick,
		placer.WithSeed(1), placer.WithAlgorithm(placer.SeqPair),
		placer.WithProgress(func(p placer.Progress) {
			mu.Lock()
			snaps = append(snaps, p)
			mu.Unlock()
		}))
	if err != nil {
		t.Fatal(err)
	}
	if len(snaps) != res.Stages {
		t.Fatalf("%d snapshots for %d stages", len(snaps), res.Stages)
	}
	last := snaps[len(snaps)-1]
	if last.Algorithm != placer.SeqPair || last.Stage != res.Stages || last.Moves != res.Moves {
		t.Fatalf("final snapshot %+v disagrees with result (stages %d moves %d)", last, res.Stages, res.Moves)
	}
	if last.Best != res.Cost {
		t.Fatalf("final best %v, result cost %v", last.Best, res.Cost)
	}
}

// TestSolveDeadline: an expired WithDeadline cancels at the first
// stage boundary and returns best-so-far flagged cancelled.
func TestSolveDeadline(t *testing.T) {
	res, err := placer.Solve(t.Context(), miller(t), quick, placer.WithSeed(1),
		placer.WithDeadline(time.Now().Add(-time.Second)))
	if err != nil {
		t.Fatal(err)
	}
	if !res.Cancelled {
		t.Fatal("expired deadline did not cancel")
	}
	if len(res.Placement) != 9 {
		t.Fatalf("cancelled run kept no best-so-far placement: %d modules", len(res.Placement))
	}
}

// TestSolveRejects: validation errors surface before any annealing.
func TestSolveRejects(t *testing.T) {
	if _, err := placer.Solve(t.Context(), &placer.Problem{}); err == nil {
		t.Error("empty problem accepted")
	}
	if _, err := placer.Solve(t.Context(), miller(t),
		placer.WithSchedule(placer.Schedule{InitialTemp: 1, MinTemp: 2})); err == nil {
		t.Error("inverted temperature schedule accepted")
	}
	if _, err := placer.Solve(t.Context(), miller(t),
		placer.WithSchedule(placer.Schedule{Cooling: 1.5})); err == nil {
		t.Error("cooling outside (0,1) accepted")
	}
}

// TestSolveZeroStageGuard: a MinTemp above the calibrated initial
// temperature must fail, not return the random initial placement as a
// solved result.
func TestSolveZeroStageGuard(t *testing.T) {
	_, err := placer.Solve(t.Context(), miller(t), placer.WithSeed(1),
		placer.WithSchedule(placer.Schedule{MinTemp: 1e30}))
	if err == nil || !strings.Contains(err.Error(), "zero annealing stages") {
		t.Fatalf("zero-stage schedule returned %v, want guard error", err)
	}
}

// TestSolveWorkersNeverLose: the multi-start reduction keeps worker
// 0's serial chain, so more workers never yield a worse cost on the
// same seed.
func TestSolveWorkersNeverLose(t *testing.T) {
	serial, err := placer.Solve(t.Context(), miller(t), quick, placer.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	multi, err := placer.Solve(t.Context(), miller(t), quick, placer.WithSeed(5), placer.WithWorkers(3))
	if err != nil {
		t.Fatal(err)
	}
	if multi.Cost > serial.Cost {
		t.Fatalf("3-worker multi-start cost %v worse than serial %v", multi.Cost, serial.Cost)
	}
}

// TestSolveHierarchicalFromFlat: the hierarchical engine accepts a
// problem with no hierarchy (synthesizing one), and symmetry still
// holds by construction.
func TestSolveHierarchicalFromFlat(t *testing.T) {
	p := miller(t)
	p.Hierarchy = nil
	res, err := placer.Solve(t.Context(), p, quick, placer.WithSeed(1), placer.WithAlgorithm(placer.HBStar))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Violations) != 0 {
		t.Fatalf("hbstar on synthesized hierarchy violates constraints: %v", res.Violations)
	}
}
