package placer_test

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/service"
	"repro/internal/wire"
	"repro/placer"
)

// pinNames are the pinned benchmarks: the Miller op amp on seqpair,
// hbstar and the portfolio race, and a synthetic n=1000 sequence-pair
// instance on a short schedule. The request and result fixtures under
// testdata were produced by the pre-refactor service.Solve path (the
// dispatch-switch implementation this API replaced), so agreement
// here proves the registry refactor changed no placement. The
// n120_temper fixture was generated immediately before the
// observability instrumentation landed in the annealing loops, so it
// additionally pins that recording hooks perturb nothing — the
// tempered path exercises the exchange sweep, whose instrumented
// Metropolis test must consume randomness exactly as before.
var pinNames = []string{"miller_seqpair", "miller_hbstar", "miller_portfolio", "n1000_seqpair", "n120_temper"}

func readPin(t *testing.T, name string) (req *wire.Request, want *wire.Result) {
	t.Helper()
	reqData, err := os.ReadFile(filepath.Join("testdata", "pin_"+name+"_request.json"))
	if err != nil {
		t.Fatal(err)
	}
	req, err = wire.DecodeRequest(reqData)
	if err != nil {
		t.Fatal(err)
	}
	resData, err := os.ReadFile(filepath.Join("testdata", "pin_"+name+"_result.json"))
	if err != nil {
		t.Fatal(err)
	}
	want = &wire.Result{}
	if err := json.Unmarshal(resData, want); err != nil {
		t.Fatal(err)
	}
	return req, want
}

func checkPinned(t *testing.T, path string, want *wire.Result, got *wire.Result) {
	t.Helper()
	if got.Method != want.Method {
		t.Errorf("%s: method %q, pre-refactor %q", path, got.Method, want.Method)
	}
	if got.Cost != want.Cost {
		t.Errorf("%s: cost %v, pre-refactor %v", path, got.Cost, want.Cost)
	}
	if got.Stages != want.Stages || got.Moves != want.Moves {
		t.Errorf("%s: stages/moves %d/%d, pre-refactor %d/%d", path, got.Stages, got.Moves, want.Stages, want.Moves)
	}
	if len(got.Placement) != len(want.Placement) {
		t.Fatalf("%s: %d placed modules, pre-refactor %d", path, len(got.Placement), len(want.Placement))
	}
	for i := range want.Placement {
		if got.Placement[i] != want.Placement[i] {
			t.Fatalf("%s: module %d placed %+v, pre-refactor %+v", path, i, got.Placement[i], want.Placement[i])
		}
	}
}

// TestPinServiceSolve: the daemon/CLI-shared solve path must
// reproduce the pre-refactor placements bit for bit.
func TestPinServiceSolve(t *testing.T) {
	for _, name := range pinNames {
		t.Run(name, func(t *testing.T) {
			req, want := readPin(t, name)
			got, err := service.Solve(t.Context(), req, nil)
			if err != nil {
				t.Fatal(err)
			}
			checkPinned(t, "service.Solve", want, got)
			if got.Breakdown == nil {
				t.Error("result carries no cost breakdown")
			}
		})
	}
}

// TestPinPublicSolve: driving placer.Solve directly with the
// equivalent functional options must give the same placements again —
// the public API adds no hidden divergence over the service adapter.
func TestPinPublicSolve(t *testing.T) {
	for _, name := range pinNames {
		t.Run(name, func(t *testing.T) {
			req, want := readPin(t, name)
			opts := []placer.Option{
				placer.WithSeed(req.Options.Seed),
				placer.WithWorkers(req.Options.Workers),
				placer.WithSchedule(req.Options.Schedule()),
			}
			if req.Options.TemperChains > 0 {
				opts = append(opts, placer.WithTempering(req.Options.TemperChains, req.Options.ExchangeEvery))
			}
			if req.Options.Method == wire.MethodPortfolio {
				opts = append(opts, placer.WithPortfolio())
			} else {
				opts = append(opts, placer.WithAlgorithm(req.Options.Method))
			}
			res, err := placer.Solve(t.Context(), req.Problem.ToCanon(), opts...)
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != want.Method {
				t.Errorf("algorithm %q, pre-refactor %q", res.Algorithm, want.Method)
			}
			if res.Cost != want.Cost {
				t.Errorf("cost %v, pre-refactor %v", res.Cost, want.Cost)
			}
			if len(res.Placement) != len(want.Placement) {
				t.Fatalf("%d placed modules, pre-refactor %d", len(res.Placement), len(want.Placement))
			}
			for i, m := range res.Placement {
				w := want.Placement[i]
				if m.Name != w.Name || m.X != w.X || m.Y != w.Y || m.W != w.W || m.H != w.H {
					t.Fatalf("module %d placed %+v, pre-refactor %+v", i, m, w)
				}
			}
			// The breakdown must decompose the cost exactly: the shares
			// sum to Cost bit for bit (same summation order as the
			// model's own Cost()).
			sum := 0.0
			for _, tc := range res.Breakdown {
				sum += tc.Cost
			}
			if sum != res.Cost {
				t.Errorf("breakdown sums to %v, cost is %v", sum, res.Cost)
			}
		})
	}
}
