package placer

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// SyntheticSpec parameterizes a generated placement instance. The
// zero value of every field selects a sensible default, so
// Synthetic(SyntheticSpec{N: 10000, Seed: 1}) is a complete
// specification. Generation is deterministic: the same spec yields a
// bit-identical Problem on every call and platform.
type SyntheticSpec struct {
	// N is the module count (required, 1..MaxModules).
	N int
	// Seed selects the instance; all randomness derives from it.
	Seed int64
	// NetsPerModule scales the net count to ~N·NetsPerModule
	// (default 1.25, the sparse-netlist regime of analog blocks).
	NetsPerModule float64
	// MaxNetDegree caps net fan-out (default 16).
	MaxNetDegree int
	// DegreeExponent shapes the net-degree distribution: degrees
	// d ∈ [2, MaxNetDegree] are drawn with P(d) ∝ d^(−exponent), the
	// Rent-style heavy-tailed mix of many two-pin nets and few buses
	// (default 2.0).
	DegreeExponent float64
	// SymmetryDensity is the fraction of modules committed to
	// symmetric pairs (default 0; pairs get identical dimensions and
	// are grouped up to four pairs per symmetry group).
	SymmetryDensity float64
	// AspectMin/AspectMax bound module aspect ratios (default
	// 0.5–2.0).
	AspectMin, AspectMax float64
	// MinArea/MaxArea bound module areas, drawn log-uniformly
	// (default 40–4000).
	MinArea, MaxArea int
}

// withDefaults fills zero fields.
func (s SyntheticSpec) withDefaults() SyntheticSpec {
	if s.NetsPerModule == 0 {
		s.NetsPerModule = 1.25
	}
	if s.MaxNetDegree == 0 {
		s.MaxNetDegree = 16
	}
	if s.MaxNetDegree < 2 {
		s.MaxNetDegree = 2
	}
	if s.DegreeExponent == 0 {
		s.DegreeExponent = 2.0
	}
	if s.AspectMin == 0 {
		s.AspectMin = 0.5
	}
	if s.AspectMax == 0 {
		s.AspectMax = 2.0
	}
	if s.MinArea == 0 {
		s.MinArea = 40
	}
	if s.MaxArea == 0 {
		s.MaxArea = 4000
	}
	return s
}

// Synthetic generates a deterministic placement instance at the
// spec's scale: log-uniform module areas with bounded aspect ratios,
// a heavy-tailed net-degree distribution with id-local connectivity,
// and optional symmetric-pair density. The result passes Validate
// for any spec with 1 ≤ N ≤ MaxModules; it is the instance family
// behind the 10⁴–10⁵-module scaling benchmarks.
func Synthetic(spec SyntheticSpec) (*Problem, error) {
	spec = spec.withDefaults()
	n := spec.N
	if n < 1 || n > MaxModules {
		return nil, fmt.Errorf("placer: synthetic N %d outside [1, %d]", n, MaxModules)
	}
	if spec.AspectMin <= 0 || spec.AspectMax < spec.AspectMin {
		return nil, fmt.Errorf("placer: synthetic aspect range [%v, %v] invalid", spec.AspectMin, spec.AspectMax)
	}
	if spec.MinArea < 1 || spec.MaxArea < spec.MinArea {
		return nil, fmt.Errorf("placer: synthetic area range [%d, %d] invalid", spec.MinArea, spec.MaxArea)
	}
	if spec.SymmetryDensity < 0 || spec.SymmetryDensity > 1 {
		return nil, fmt.Errorf("placer: synthetic symmetry density %v outside [0, 1]", spec.SymmetryDensity)
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	p := &Problem{Name: fmt.Sprintf("synthetic-n%d-seed%d", n, spec.Seed)}

	// Modules: log-uniform area, uniform aspect, clamped to the
	// geometry ceilings.
	logLo, logHi := math.Log(float64(spec.MinArea)), math.Log(float64(spec.MaxArea))
	p.Modules = make([]Module, n)
	for i := range p.Modules {
		area := math.Exp(logLo + rng.Float64()*(logHi-logLo))
		aspect := spec.AspectMin + rng.Float64()*(spec.AspectMax-spec.AspectMin)
		w := int(math.Round(math.Sqrt(area * aspect)))
		h := int(math.Round(math.Sqrt(area / aspect)))
		p.Modules[i] = Module{
			Name: fmt.Sprintf("m%06d", i),
			W:    clampDim(w),
			H:    clampDim(h),
		}
	}

	// Symmetry: commit the requested module fraction to pairs with
	// matched dimensions, up to four pairs per group.
	pairs := int(float64(n) * spec.SymmetryDensity / 2)
	if pairs > 0 {
		perm := rng.Perm(n)
		var group SymGroup
		for k := 0; k < pairs; k++ {
			a, b := perm[2*k], perm[2*k+1]
			p.Modules[b].W, p.Modules[b].H = p.Modules[a].W, p.Modules[a].H
			group.Pairs = append(group.Pairs, [2]int{a, b})
			if len(group.Pairs) == 4 {
				p.Symmetry = append(p.Symmetry, group)
				group = SymGroup{}
			}
		}
		if len(group.Pairs) > 0 {
			p.Symmetry = append(p.Symmetry, group)
		}
	}

	// Nets: heavy-tailed degree, id-local membership windows (nearby
	// ids are "nearby" in the netlist, the locality real designs
	// exhibit and a placer can exploit).
	if n >= 2 {
		maxDeg := spec.MaxNetDegree
		if maxDeg > n {
			maxDeg = n
		}
		cum := degreeCDF(maxDeg, spec.DegreeExponent)
		nets := int(math.Round(float64(n) * spec.NetsPerModule))
		p.Nets = make([][]int, 0, nets)
		seen := make(map[int]bool, maxDeg)
		for len(p.Nets) < nets {
			deg := 2 + sort.SearchFloat64s(cum, rng.Float64())
			if deg > maxDeg {
				deg = maxDeg
			}
			center := rng.Intn(n)
			window := 8 * deg
			if window < 32 {
				window = 32
			}
			lo := center - window/2
			if lo < 0 {
				lo = 0
			}
			hi := lo + window
			if hi > n {
				hi = n
				lo = hi - window
				if lo < 0 {
					lo = 0
				}
			}
			net := make([]int, 0, deg)
			for len(seen) < deg && len(seen) < hi-lo {
				m := lo + rng.Intn(hi-lo)
				if !seen[m] {
					seen[m] = true
					net = append(net, m)
				}
			}
			for m := range seen {
				delete(seen, m)
			}
			if len(net) >= 2 {
				p.Nets = append(p.Nets, net)
			}
		}
	}
	p.Normalize()
	return p, nil
}

// clampDim bounds a module dimension to [1, MaxDim].
func clampDim(d int) int {
	if d < 1 {
		return 1
	}
	if d > MaxDim {
		return MaxDim
	}
	return d
}

// degreeCDF returns the cumulative distribution of the truncated
// power law over degrees 2..maxDeg: cum[k] is P(degree ≤ k+2), so a
// uniform draw u maps to degree 2 + SearchFloat64s(cum, u).
func degreeCDF(maxDeg int, exponent float64) []float64 {
	cum := make([]float64, maxDeg-1)
	total := 0.0
	for d := 2; d <= maxDeg; d++ {
		total += math.Pow(float64(d), -exponent)
		cum[d-2] = total
	}
	for i := range cum {
		cum[i] /= total
	}
	return cum
}
