package placer_test

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"repro/internal/obs"
	"repro/internal/wire"
	"repro/placer"
)

// traceProblem is a small synthetic instance; big enough that a short
// schedule still runs several stages per chain.
func traceProblem(t *testing.T) *placer.Problem {
	t.Helper()
	p, err := placer.Synthetic(placer.SyntheticSpec{N: 60, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// traceSchedule fixes InitialTemp so the tempering ladder's rung
// temperatures are exactly geometric (auto-calibration is per-replica,
// which would let rung temperatures cross).
func traceSchedule() placer.Schedule {
	return placer.Schedule{MovesPerStage: 40, MaxStages: 15, StallStages: 15, Cooling: 0.9, InitialTemp: 500}
}

// TestTraceDoesNotPerturb pins WithTrace's core promise: a traced
// solve places bit-identically to an untraced one with the same seed.
func TestTraceDoesNotPerturb(t *testing.T) {
	p := traceProblem(t)
	base := []placer.Option{
		placer.WithAlgorithm("seqpair"),
		placer.WithSeed(11),
		placer.WithSchedule(traceSchedule()),
		placer.WithTempering(3, 2),
	}
	plain, err := placer.Solve(context.Background(), p, base...)
	if err != nil {
		t.Fatal(err)
	}
	traced, err := placer.Solve(context.Background(), p, append(base, placer.WithTrace(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if plain.Trace != nil {
		t.Fatal("untraced solve returned a trace")
	}
	if traced.Trace == nil {
		t.Fatal("traced solve returned no trace")
	}
	if plain.Cost != traced.Cost {
		t.Fatalf("tracing changed the cost: %v vs %v", plain.Cost, traced.Cost)
	}
	for i := range plain.Placement {
		if plain.Placement[i] != traced.Placement[i] {
			t.Fatalf("tracing moved module %d: %+v vs %+v", i, plain.Placement[i], traced.Placement[i])
		}
	}
}

// TestTraceDeterministic pins the recording itself: two fixed-seed
// solves produce byte-identical wire trace JSON — flight events carry
// no wall-clock and the snapshot order is canonical, so the trace
// inherits the solve's determinism.
func TestTraceDeterministic(t *testing.T) {
	p := traceProblem(t)
	run := func() []byte {
		res, err := placer.Solve(context.Background(), p,
			placer.WithAlgorithm("seqpair"),
			placer.WithSeed(23),
			placer.WithSchedule(traceSchedule()),
			placer.WithTempering(3, 2),
			placer.WithTrace(0),
		)
		if err != nil {
			t.Fatal(err)
		}
		b, err := json.Marshal(wire.TraceFromPlacer(res.Trace))
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	a, b := run(), run()
	if !bytes.Equal(a, b) {
		t.Fatalf("fixed-seed traces differ:\n%s\n%s", a, b)
	}
}

// TestTraceTemperedContent checks a tempered recording tells the whole
// story: stage events for every rung with sane monotone counters, and
// exchange attempts between adjacent rungs with the colder rung first.
func TestTraceTemperedContent(t *testing.T) {
	const chains = 3
	res, err := placer.Solve(context.Background(), traceProblem(t),
		placer.WithAlgorithm("seqpair"),
		placer.WithSeed(5),
		placer.WithSchedule(traceSchedule()),
		placer.WithTempering(chains, 2),
		placer.WithTrace(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr == nil {
		t.Fatal("no trace")
	}
	if tr.Algorithm != "seqpair" {
		t.Errorf("trace algorithm %q", tr.Algorithm)
	}
	stages := map[int]int{}
	exchanges := 0
	for _, e := range tr.Events {
		switch e.Kind {
		case "stage":
			if e.Worker < 0 || e.Worker >= chains {
				t.Fatalf("stage event from rung %d outside the ladder", e.Worker)
			}
			if e.Accepted > e.Moves || e.Improved > e.Accepted {
				t.Fatalf("stage counters inconsistent: %+v", e)
			}
			if e.Best > e.Cur {
				t.Fatalf("best cost above current: %+v", e)
			}
			stages[e.Worker]++
		case "exchange":
			if e.Peer != e.Worker+1 {
				t.Fatalf("exchange not between adjacent rungs: %+v", e)
			}
			if e.PeerTemp <= e.Temp {
				t.Fatalf("exchange peer rung %d at %g not hotter than rung %d at %g — the ladder is ordered cold to hot",
					e.Peer, e.PeerTemp, e.Worker, e.Temp)
			}
			exchanges++
		}
	}
	for k := 0; k < chains; k++ {
		if stages[k] == 0 {
			t.Errorf("rung %d recorded no stage events", k)
		}
	}
	if exchanges == 0 {
		t.Error("no exchange events recorded")
	}
}

// TestTraceAdaptiveKinds: with the adaptive move portfolio on, stage
// events carry the per-move-kind proposal/acceptance counters that
// explain what the adaptive weights learned.
func TestTraceAdaptiveKinds(t *testing.T) {
	res, err := placer.Solve(context.Background(), traceProblem(t),
		placer.WithAlgorithm("seqpair"),
		placer.WithSeed(9),
		placer.WithSchedule(traceSchedule()),
		placer.WithAdaptiveMoves(),
		placer.WithTrace(0),
	)
	if err != nil {
		t.Fatal(err)
	}
	withKinds := 0
	for _, e := range res.Trace.Events {
		if e.Kind != "stage" {
			continue
		}
		if len(e.KindProposed) != len(e.KindAccepted) {
			t.Fatalf("kind counter lengths differ: %+v", e)
		}
		if len(e.KindProposed) > 0 {
			withKinds++
			for i := range e.KindProposed {
				if e.KindAccepted[i] > e.KindProposed[i] {
					t.Fatalf("kind %d accepted %d of %d proposed", i, e.KindAccepted[i], e.KindProposed[i])
				}
			}
		}
	}
	if withKinds == 0 {
		t.Fatal("adaptive solve recorded no per-kind counters")
	}
}

// TestTraceRingDrops: a tiny ring must report drops and keep the
// newest events rather than failing or growing.
func TestTraceRingDrops(t *testing.T) {
	res, err := placer.Solve(context.Background(), traceProblem(t),
		placer.WithAlgorithm("seqpair"),
		placer.WithSeed(2),
		placer.WithSchedule(traceSchedule()),
		placer.WithTempering(3, 1),
		placer.WithTrace(4),
	)
	if err != nil {
		t.Fatal(err)
	}
	tr := res.Trace
	if tr.Capacity != 4 {
		t.Fatalf("ring capacity %d, want 4", tr.Capacity)
	}
	if len(tr.Events) > 4 {
		t.Fatalf("%d events from a 4-slot ring", len(tr.Events))
	}
	if tr.Dropped == 0 {
		t.Fatal("overflowing recording reported no drops")
	}
}

// TestWithRecorderLive pins the caller-owned-ring contract: the solve
// records into the provided Flight (readable mid-run via Since — here
// checked post-run), still returns the full recording on Result.Trace,
// and places bit-identically to a WithTrace solve of the same seed.
func TestWithRecorderLive(t *testing.T) {
	p := traceProblem(t)
	base := []placer.Option{
		placer.WithAlgorithm("seqpair"),
		placer.WithSeed(17),
		placer.WithSchedule(traceSchedule()),
	}
	ring := obs.NewFlight(0)
	live, err := placer.Solve(context.Background(), p, append(base, placer.WithRecorder(ring))...)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() == 0 {
		t.Fatal("solve recorded nothing into the caller's ring")
	}
	if live.Trace == nil || len(live.Trace.Events) != ring.Len() {
		t.Fatalf("result trace has %d events, ring holds %d", len(live.Trace.Events), ring.Len())
	}
	if tail := ring.Since(0); len(tail) != ring.Len() {
		t.Fatalf("Since(0) drained %d of %d events", len(tail), ring.Len())
	}
	traced, err := placer.Solve(context.Background(), p, append(base, placer.WithTrace(0))...)
	if err != nil {
		t.Fatal(err)
	}
	if live.Cost != traced.Cost {
		t.Fatalf("recorder changed the cost: %v vs %v", live.Cost, traced.Cost)
	}
	for i := range traced.Placement {
		if live.Placement[i] != traced.Placement[i] {
			t.Fatalf("recorder moved module %d", i)
		}
	}
}

// TestPortfolioEngineTraces: a traced portfolio race retains every
// racer's recording behind the size cap, the winner's full recording
// stays on Trace, and a caller-owned ring is never shared with racers.
func TestPortfolioEngineTraces(t *testing.T) {
	p := traceProblem(t)
	ring := obs.NewFlight(0)
	res, err := placer.Solve(context.Background(), p,
		placer.WithPortfolio(),
		placer.WithSeed(5),
		placer.WithSchedule(traceSchedule()),
		placer.WithRecorder(ring),
	)
	if err != nil {
		t.Fatal(err)
	}
	if ring.Len() != 0 {
		t.Fatalf("portfolio racers recorded %d events into the shared ring; they must use private rings", ring.Len())
	}
	racers := placer.PortfolioAlgorithms()
	if len(res.EngineTraces) != len(racers) {
		t.Fatalf("EngineTraces has %d entries, want one per racer (%d)", len(res.EngineTraces), len(racers))
	}
	if res.Trace == nil || res.Trace.Algorithm != res.Algorithm {
		t.Fatalf("winner trace %+v does not match winning algorithm %q", res.Trace, res.Algorithm)
	}
	seenWinner := false
	for i, tr := range res.EngineTraces {
		if tr.Algorithm != racers[i] {
			t.Fatalf("EngineTraces[%d] is %q, want racing order %q", i, tr.Algorithm, racers[i])
		}
		if len(tr.Events) > placer.MaxEngineTraceEvents {
			t.Fatalf("racer %q trace has %d events, over the %d cap", tr.Algorithm, len(tr.Events), placer.MaxEngineTraceEvents)
		}
		if tr.Algorithm == res.Algorithm {
			seenWinner = true
		}
	}
	if !seenWinner {
		t.Fatal("winner missing from EngineTraces")
	}

	// Single-engine solves keep EngineTraces empty: Trace is complete.
	single, err := placer.Solve(context.Background(), p,
		placer.WithAlgorithm("seqpair"), placer.WithSeed(5),
		placer.WithSchedule(traceSchedule()), placer.WithTrace(0))
	if err != nil {
		t.Fatal(err)
	}
	if len(single.EngineTraces) != 0 {
		t.Fatalf("single-engine solve grew EngineTraces: %d", len(single.EngineTraces))
	}
}
