package placer

import (
	"context"

	"repro/internal/anneal"
	"repro/internal/hbstar"
	"repro/internal/place"
)

// Built-in algorithm names. The strings double as the wire format's
// options.method values and the CLI's -method arguments.
const (
	SeqPair  = "seqpair"
	BStar    = "bstar"
	TCG      = "tcg"
	Slicing  = "slicing"
	Absolute = "absolute"
	HBStar   = "hbstar"
	// Memetic engines over crossover-capable representations: a
	// crossover-enabled evolutionary exploration followed by annealing
	// refinement (the GA+SA scheme of Zhang et al.). The genetic:<repr>
	// naming is open-ended — any representation implementing
	// engine.Crossover can register one.
	GeneticSeqPair  = "genetic:seqpair"
	GeneticAbsolute = "genetic:absolute"
)

// init self-registers the built-in engines. Registration order is
// load-bearing: it is the portfolio racing and tie-break order
// (seqpair, bstar, tcg) and the display order of every listing.
func init() {
	Register(SeqPair, flatFactory(Info{
		Name:        SeqPair,
		Portfolio:   true,
		Description: "simulated annealing over symmetric-feasible sequence pairs (symmetry by construction)",
	}, place.SeqPair))
	Register(BStar, flatFactory(Info{
		Name:        BStar,
		Portfolio:   true,
		Description: "B*-tree compacted placement",
	}, place.BStar))
	Register(TCG, flatFactory(Info{
		Name:        TCG,
		Portfolio:   true,
		Description: "transitive closure graph placement",
	}, place.TCG))
	Register(Slicing, flatFactory(Info{
		Name:        Slicing,
		Description: "slicing tree (normalized Polish expression) placement",
	}, place.Slicing))
	Register(Absolute, flatFactory(Info{
		Name:        Absolute,
		Description: "absolute-coordinate annealing baseline with overlap penalty",
	}, place.Absolute))
	Register(HBStar, func() Engine { return hbstarEngine{} })
	Register(GeneticSeqPair, geneticFactory(Info{
		Name:        GeneticSeqPair,
		Description: "memetic search (order-crossover GA + annealing refinement) over symmetric-feasible sequence pairs",
	}, place.GeneticSeqPair))
	Register(GeneticAbsolute, geneticFactory(Info{
		Name:        GeneticAbsolute,
		Description: "memetic search (uniform-crossover GA + annealing refinement) over absolute coordinates",
	}, place.GeneticAbsolute))
}

// flatEngine adapts one of the flat placers to the Engine interface:
// the canonical problem converts to the id-based flat view
// (hierarchy-spelled symmetry included), the placer anneals it, and
// the result is judged against the problem's full constraint set —
// symmetry included, whether or not the representation enforced it by
// construction. Only the sequence-pair engine enforces symmetry
// groups in its move set; the others ignore them in their moves but
// still optimize the identical composite objective (including the
// thermal term over symmetry pairs), so portfolio mode compares like
// for like.
type flatEngine struct {
	info Info
	run  func(*place.Problem, anneal.Options) (*place.Result, error)
}

// flatFactory wraps a flat placer entry point as a registry factory.
func flatFactory(info Info, run func(*place.Problem, anneal.Options) (*place.Result, error)) Factory {
	return func() Engine { return flatEngine{info: info, run: run} }
}

// Info implements Engine.
func (e flatEngine) Info() Info { return e.info }

// Solve implements Engine.
func (e flatEngine) Solve(ctx context.Context, p *Problem, opt EngineOptions) (*Result, error) {
	prob, err := p.flat()
	if err != nil {
		return nil, err
	}
	prob.AdaptiveMoves = opt.AdaptiveMoves
	res, err := e.run(prob, opt.annealOptions(ctx, e.info.Name))
	if err != nil {
		return nil, err
	}
	out := newResult(p, e.info.Name, res.Placement, res.Cost, res.Stats, res.Breakdown)
	for _, v := range prob.ConstraintSet().Violations(res.Placement) {
		out.Violations = append(out.Violations, v.Error())
	}
	return out, nil
}

// geneticEngine adapts a memetic placer entry point: the same flat
// problem view as flatEngine, driven through the two-phase GA+SA
// search. The GA phase derives its budget from the annealing schedule
// (one generation per stage bound, offspring per the move bound's
// scale) so wire-level schedule ceilings bound the genetic work too.
type geneticEngine struct {
	info Info
	run  func(*place.Problem, anneal.GAOptions, anneal.Options) (*place.Result, error)
}

// geneticFactory wraps a memetic placer entry point as a registry
// factory.
func geneticFactory(info Info, run func(*place.Problem, anneal.GAOptions, anneal.Options) (*place.Result, error)) Factory {
	return func() Engine { return geneticEngine{info: info, run: run} }
}

// Info implements Engine.
func (e geneticEngine) Info() Info { return e.info }

// Solve implements Engine.
func (e geneticEngine) Solve(ctx context.Context, p *Problem, opt EngineOptions) (*Result, error) {
	prob, err := p.flat()
	if err != nil {
		return nil, err
	}
	prob.AdaptiveMoves = opt.AdaptiveMoves
	sa := opt.annealOptions(ctx, e.info.Name)
	ga := anneal.GAOptions{
		Seed:             opt.Seed,
		Generations:      sa.MaxStages,
		StallGenerations: sa.StallStages,
		CrossoverRate:    place.DefaultCrossoverRate,
		Context:          ctx,
	}
	res, err := e.run(prob, ga, sa)
	if err != nil {
		return nil, err
	}
	out := newResult(p, e.info.Name, res.Placement, res.Cost, res.Stats, res.Breakdown)
	for _, v := range prob.ConstraintSet().Violations(res.Placement) {
		out.Violations = append(out.Violations, v.Error())
	}
	return out, nil
}

// hbstarEngine adapts the hierarchical HB*-tree placer: the problem
// materializes as a benchmark circuit (hierarchy preserved, or
// synthesized from the flat groups), and symmetry is satisfied by
// construction through ASF-B*-tree symmetry islands.
type hbstarEngine struct{}

// Info implements Engine.
func (hbstarEngine) Info() Info {
	return Info{
		Name:         HBStar,
		Hierarchical: true,
		Description:  "hierarchical HB*-tree placement with ASF-B*-tree symmetry islands",
	}
}

// Solve implements Engine.
func (e hbstarEngine) Solve(ctx context.Context, p *Problem, opt EngineOptions) (*Result, error) {
	bench, err := p.bench()
	if err != nil {
		return nil, err
	}
	obj := p.Objective
	// ProxWeight tunes the flat engines' pull term only; the
	// hierarchical placer always enforces proximity through its
	// fragments penalty (same contract as core.PlaceBenchObjective).
	hp := &hbstar.Problem{
		Bench:         bench,
		AreaWeight:    obj.AreaWeight,
		WireWeight:    obj.WireWeight,
		OutlineW:      obj.OutlineW,
		OutlineH:      obj.OutlineH,
		OutlineWeight: obj.OutlineWeight,
		ThermalWeight: obj.ThermalWeight,
		ThermalSigma:  obj.ThermalSigma,
	}
	if len(p.Power) > 0 {
		hp.Power = make(map[string]float64, len(p.Power))
		for i, pw := range p.Power {
			hp.Power[p.Modules[i].Name] = pw
		}
	}
	res, err := hbstar.Place(hp, opt.annealOptions(ctx, HBStar))
	if err != nil {
		return nil, err
	}
	out := newResult(p, HBStar, res.Placement, res.Cost, res.Stats, res.Breakdown)
	for _, v := range res.Violations {
		out.Violations = append(out.Violations, v.Error())
	}
	return out, nil
}
