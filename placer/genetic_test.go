package placer_test

import (
	"strings"
	"testing"

	"repro/placer"
)

// fastSchedule keeps the stochastic engines cheap in tests.
var fastSchedule = placer.Schedule{MovesPerStage: 30, MaxStages: 15, StallStages: 10}

// TestGeneticEnginesSolve: the memetic registry entries solve a
// symmetry-constrained benchmark end to end — a legal placement over
// every module, and for the sequence-pair variant zero violations
// (symmetry holds by construction through the S-F encoding).
func TestGeneticEnginesSolve(t *testing.T) {
	p, err := placer.Benchmark("miller")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{placer.GeneticSeqPair, placer.GeneticAbsolute} {
		t.Run(algo, func(t *testing.T) {
			res, err := placer.Solve(t.Context(), p,
				placer.WithAlgorithm(algo), placer.WithSeed(3),
				placer.WithSchedule(fastSchedule))
			if err != nil {
				t.Fatal(err)
			}
			if res.Algorithm != algo {
				t.Fatalf("algorithm %q, want %q", res.Algorithm, algo)
			}
			if len(res.Placement) != len(p.Modules) {
				t.Fatalf("placed %d modules, want %d", len(res.Placement), len(p.Modules))
			}
			if res.Stages == 0 || res.Moves == 0 {
				t.Fatalf("no search work reported: stages=%d moves=%d", res.Stages, res.Moves)
			}
			if algo == placer.GeneticSeqPair {
				if len(res.Violations) != 0 {
					t.Fatalf("genetic seqpair violates constraints: %v", res.Violations)
				}
				if !res.Legal {
					t.Fatal("genetic seqpair placement overlaps")
				}
			}
			// Deterministic for a fixed seed.
			again, err := placer.Solve(t.Context(), p,
				placer.WithAlgorithm(algo), placer.WithSeed(3),
				placer.WithSchedule(fastSchedule))
			if err != nil {
				t.Fatal(err)
			}
			if again.Cost != res.Cost {
				t.Fatalf("costs differ across identical runs: %v vs %v", again.Cost, res.Cost)
			}
		})
	}
}

// TestGeneticEnginesListed: the memetic engines appear in the registry
// listing (and therefore in analogplace -algorithms and GET
// /v1/algorithms, which render this listing) and are never raced by
// the portfolio.
func TestGeneticEnginesListed(t *testing.T) {
	found := map[string]bool{}
	for _, info := range placer.Algorithms() {
		found[info.Name] = true
		if strings.HasPrefix(info.Name, "genetic:") && info.PortfolioEligible() {
			t.Errorf("%s must not be portfolio-eligible", info.Name)
		}
	}
	if !found[placer.GeneticSeqPair] || !found[placer.GeneticAbsolute] {
		t.Fatalf("genetic engines missing from registry listing: %v", found)
	}
}

// TestAdaptiveMovesSolve: the opt-in adaptive move portfolio solves
// the same problems to valid placements, stays deterministic for a
// seed, and leaves the default path untouched (the pin tests assert
// the latter bit for bit; here we only check the option plumbs
// through).
func TestAdaptiveMovesSolve(t *testing.T) {
	p, err := placer.Benchmark("miller")
	if err != nil {
		t.Fatal(err)
	}
	for _, algo := range []string{placer.SeqPair, placer.Slicing, placer.Absolute} {
		t.Run(algo, func(t *testing.T) {
			res, err := placer.Solve(t.Context(), p,
				placer.WithAlgorithm(algo), placer.WithSeed(7),
				placer.WithAdaptiveMoves(),
				placer.WithSchedule(fastSchedule))
			if err != nil {
				t.Fatal(err)
			}
			if len(res.Placement) != len(p.Modules) {
				t.Fatalf("placed %d modules, want %d", len(res.Placement), len(p.Modules))
			}
			if algo == placer.SeqPair && len(res.Violations) != 0 {
				t.Fatalf("adaptive seqpair violates constraints: %v", res.Violations)
			}
			again, err := placer.Solve(t.Context(), p,
				placer.WithAlgorithm(algo), placer.WithSeed(7),
				placer.WithAdaptiveMoves(),
				placer.WithSchedule(fastSchedule))
			if err != nil {
				t.Fatal(err)
			}
			if again.Cost != res.Cost {
				t.Fatalf("adaptive runs with one seed differ: %v vs %v", again.Cost, res.Cost)
			}
		})
	}
}
