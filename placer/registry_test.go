package placer_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"

	"repro/internal/service"
	"repro/internal/wire"
	"repro/placer"
)

// fakeHierEngine is a hierarchical-only engine that claims portfolio
// eligibility; the portfolio must skip it anyway.
type fakeHierEngine struct{}

func (fakeHierEngine) Info() placer.Info {
	return placer.Info{Name: "x-test-hier", Hierarchical: true, Portfolio: true}
}

func (fakeHierEngine) Solve(ctx context.Context, p *placer.Problem, opt placer.EngineOptions) (*placer.Result, error) {
	panic("the portfolio must never race a hierarchical-only engine")
}

func TestRegisterDuplicatePanics(t *testing.T) {
	mustPanic := func(name string, f func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		f()
	}
	placer.Register("x-test-dup", func() placer.Engine { return fakeHierEngine{} })
	mustPanic("duplicate name", func() {
		placer.Register("x-test-dup", func() placer.Engine { return fakeHierEngine{} })
	})
	mustPanic("builtin name", func() {
		placer.Register(placer.SeqPair, func() placer.Engine { return fakeHierEngine{} })
	})
	mustPanic("empty name", func() {
		placer.Register("", func() placer.Engine { return fakeHierEngine{} })
	})
	mustPanic("nil factory", func() { placer.Register("x-test-nil", nil) })
}

// TestRegistryListsBuiltins: the six engines self-register in
// portfolio tie-break order, and KnownMethod follows the registry.
func TestRegistryListsBuiltins(t *testing.T) {
	want := []string{placer.SeqPair, placer.BStar, placer.TCG, placer.Slicing, placer.Absolute, placer.HBStar,
		placer.GeneticSeqPair, placer.GeneticAbsolute}
	var got []string
	for _, info := range placer.Algorithms() {
		got = append(got, info.Name)
	}
	if len(got) < len(want) {
		t.Fatalf("registry lists %v, want at least %v", got, want)
	}
	for i, name := range want { // built-ins first, in registration order
		if got[i] != name {
			t.Fatalf("registry order %v, want prefix %v", got, want)
		}
	}
	for _, name := range want {
		if !placer.Known(name) || !wire.KnownMethod(name) {
			t.Errorf("%s not known", name)
		}
	}
	if !wire.KnownMethod(wire.MethodPortfolio) {
		t.Error("portfolio not a known wire method")
	}
}

// TestPortfolioSkipsHierarchicalOnly: a hierarchical-only engine
// never races, even when its Info claims portfolio eligibility, and
// the racing order is the registration (tie-break) order.
func TestPortfolioSkipsHierarchicalOnly(t *testing.T) {
	placer.Register("x-test-hier", func() placer.Engine { return fakeHierEngine{} })
	got := placer.PortfolioAlgorithms()
	want := []string{placer.SeqPair, placer.BStar, placer.TCG}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("portfolio set %v, want %v", got, want)
	}
	// And a real race completes without ever invoking the fake (which
	// panics if raced).
	p, err := placer.Benchmark("miller")
	if err != nil {
		t.Fatal(err)
	}
	res, err := placer.Solve(t.Context(), p,
		placer.WithPortfolio(), placer.WithSeed(1),
		placer.WithSchedule(placer.Schedule{MovesPerStage: 20, MaxStages: 10, StallStages: 10}))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, name := range want {
		if res.Algorithm == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("winner %q not in the portfolio %v", res.Algorithm, want)
	}
}

// TestUnknownAlgorithmOneMessage: placer.Solve, the wire options
// validation and the daemon's HTTP error all reject an unknown
// algorithm with the identical message (the CLI is covered in
// cmd/analogplace's tests, which share the same constructor).
func TestUnknownAlgorithmOneMessage(t *testing.T) {
	want := placer.ErrUnknownAlgorithm("sorcery").Error()

	p := &placer.Problem{Modules: []placer.Module{{Name: "A", W: 1, H: 1}}}
	if _, err := placer.Solve(t.Context(), p, placer.WithAlgorithm("sorcery")); err == nil || err.Error() != want {
		t.Errorf("placer.Solve: got %v, want %q", err, want)
	}

	o := wire.Options{Method: "sorcery"}
	if err := o.Validate(); err == nil || err.Error() != want {
		t.Errorf("wire.Options.Validate: got %v, want %q", err, want)
	}

	sched := service.New(service.Config{Workers: 1})
	defer sched.Close()
	srv := httptest.NewServer(service.NewHandler(sched))
	defer srv.Close()
	body := []byte(`{"problem":{"modules":[{"name":"A","w":1,"h":1}],"objective":{}},"options":{"method":"sorcery"}}`)
	res, err := http.Post(srv.URL+"/v1/place?wait=1", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusBadRequest {
		t.Fatalf("daemon status %d, want 400", res.StatusCode)
	}
	var msg struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(res.Body).Decode(&msg); err != nil {
		t.Fatal(err)
	}
	if msg.Error != want {
		t.Errorf("daemon: got %q, want %q", msg.Error, want)
	}
}

// TestAlgorithmsEndpoint: GET /v1/algorithms serves the registry.
func TestAlgorithmsEndpoint(t *testing.T) {
	sched := service.New(service.Config{Workers: 1})
	defer sched.Close()
	srv := httptest.NewServer(service.NewHandler(sched))
	defer srv.Close()
	res, err := http.Get(srv.URL + "/v1/algorithms")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	if res.StatusCode != http.StatusOK {
		t.Fatalf("status %d", res.StatusCode)
	}
	var views []service.AlgorithmView
	if err := json.NewDecoder(res.Body).Decode(&views); err != nil {
		t.Fatal(err)
	}
	byName := map[string]service.AlgorithmView{}
	for _, v := range views {
		byName[v.Name] = v
	}
	for _, name := range []string{placer.SeqPair, placer.HBStar, wire.MethodPortfolio} {
		if _, ok := byName[name]; !ok {
			t.Errorf("endpoint misses %q: %+v", name, views)
		}
	}
	if !byName[placer.SeqPair].Portfolio || byName[placer.SeqPair].Kind != "flat" {
		t.Errorf("seqpair misdescribed: %+v", byName[placer.SeqPair])
	}
	if k := byName[placer.HBStar].Kind; k != "hierarchical" {
		t.Errorf("hbstar kind %q, want hierarchical", k)
	}
	if strings.Contains(strings.ToLower(byName[wire.MethodPortfolio].Kind), "flat") {
		t.Errorf("portfolio entry should be the meta-method: %+v", byName[wire.MethodPortfolio])
	}
}
