package placer

import "repro/internal/obs"

// Trace is a solve's flight recording: the per-stage annealing
// telemetry WithTrace asked the engines to capture. It is attached to
// Result.Trace; under WithPortfolio it is the winning racer's
// recording. Recording never perturbs the search — a solve with
// tracing on places bit-identically to one without — and events carry
// no wall-clock, so for a fixed seed the trace itself is deterministic
// byte for byte (as long as no events were dropped).
type Trace struct {
	// Algorithm whose run was recorded.
	Algorithm string
	// Capacity is the recorder's ring size; Dropped counts events that
	// were overwritten after the ring filled. A trace with Dropped > 0
	// kept the newest events.
	Capacity int
	Dropped  uint64
	// Events in canonical order: by stage, then kind, then worker.
	Events []TraceEvent
}

// TraceEvent is one flight-recorder record. Kind selects which fields
// are meaningful:
//
//   - "stage": one completed temperature stage of chain Worker — Temp
//     after cooling, Best/Cur cost, cumulative Moves/Accepted/Improved,
//     and, when the adaptive move portfolio was active, cumulative
//     per-move-kind counters in KindProposed/KindAccepted.
//   - "exchange": one replica-exchange attempt between tempering rungs
//     Worker (temperature Temp, cost Cur) and Peer (PeerTemp,
//     PeerCost), with Accept reporting the Metropolis outcome. Costs
//     are the pre-swap decision inputs.
//   - "checkpoint": a best-so-far snapshot capture at Best; Worker -1
//     means the tempering ladder's coordinator (ladder-wide best).
//   - "resume": the run warm-started from a checkpoint costing Cur.
//   - "failpoint": an injected fault (chaos testing) named by Point,
//     observed on the solve path before or during the run.
type TraceEvent struct {
	Kind     string
	Worker   int
	Stage    int
	Temp     float64
	Best     float64
	Cur      float64
	Moves    int64
	Accepted int64
	Improved int64

	Peer     int
	PeerTemp float64
	PeerCost float64
	Accept   bool

	KindProposed []int64
	KindAccepted []int64

	Point string
}

// traceFromFlight converts a recorder's canonical snapshot into the
// public trace.
func traceFromFlight(algorithm string, f *obs.Flight) *Trace {
	if f == nil {
		return nil
	}
	events := f.Snapshot()
	tr := &Trace{
		Algorithm: algorithm,
		Capacity:  f.Capacity(),
		Dropped:   f.Dropped(),
		Events:    make([]TraceEvent, 0, len(events)),
	}
	for _, e := range events {
		te := TraceEvent{
			Kind:     e.Kind.String(),
			Worker:   int(e.Worker),
			Stage:    int(e.Stage),
			Temp:     e.Temp,
			Best:     e.Best,
			Cur:      e.Cur,
			Moves:    e.Moves,
			Accepted: e.Accepted,
			Improved: e.Improved,
			Peer:     int(e.Peer),
			PeerTemp: e.PeerTemp,
			PeerCost: e.PeerCost,
			Accept:   e.Accept,
			Point:    e.Point,
		}
		if n := int(e.NKinds); n > 0 {
			te.KindProposed = make([]int64, n)
			te.KindAccepted = make([]int64, n)
			for i := 0; i < n; i++ {
				te.KindProposed[i] = int64(e.KindProposed[i])
				te.KindAccepted[i] = int64(e.KindAccepted[i])
			}
		}
		tr.Events = append(tr.Events, te)
	}
	return tr
}

// MaxEngineTraceEvents caps each per-racer recording retained on
// Result.EngineTraces: losers keep their newest events up to this
// bound (the winner's full recording stays on Result.Trace), so a
// wide portfolio race cannot multiply the result size by the full
// ring capacity per racer.
const MaxEngineTraceEvents = 256

// truncateTrace bounds a trace to its newest maxEvents events,
// folding the cut into Dropped — the same keep-the-newest semantics
// as the ring itself overflowing.
func truncateTrace(tr *Trace, maxEvents int) *Trace {
	if tr == nil || len(tr.Events) <= maxEvents {
		return tr
	}
	cut := len(tr.Events) - maxEvents
	out := *tr
	out.Dropped += uint64(cut)
	out.Events = tr.Events[cut:]
	return &out
}

// WithRecorder attaches a caller-owned flight recorder to the solve:
// the engines record into f exactly as under WithTrace, but the
// caller holds the ring and may read it concurrently — Flight.Since
// is how the service streams stage events to SSE clients while the
// job is still annealing. The completed recording is still returned
// on Result.Trace. Under WithPortfolio the shared ring is NOT handed
// to the racers (their interleaved events would destroy per-racer
// trace determinism); each racer records into a private ring of the
// same capacity and the caller's ring stays empty. The last of
// WithRecorder/WithTrace wins.
func WithRecorder(f *obs.Flight) Option {
	return func(c *config) {
		c.recorder = f
		c.trace = f != nil
		c.traceEvents = f.Capacity()
	}
}

// WithTrace attaches a flight recorder to the solve: the engines
// record per-stage annealing telemetry (temperature, costs, move
// counters, adaptive move-kind acceptance, replica exchanges,
// checkpoint activity) into a fixed-capacity ring of at most events
// records (events ≤ 0 means the default of 2048; the ring is
// allocated once up front). The recording is returned on
// Result.Trace. Under WithPortfolio every racer records into its own
// ring and the winner's recording is returned. Tracing never changes
// the search: placements are bit-identical with and without it, and
// the trace of a fixed-seed solve is itself deterministic.
//
// Tracing is engine cooperation: the built-in engines all record;
// external engines registered with Register receive no recorder and
// simply return no trace.
func WithTrace(events int) Option {
	return func(c *config) {
		c.recorder = nil
		c.trace = true
		c.traceEvents = events
	}
}
