package placer_test

import (
	"reflect"
	"testing"

	"repro/placer"
)

// TestWithTemperingDisabledMatchesWorkers pins the public delegation
// contract: WithTempering(k, 0) — exchanges off — produces the exact
// result WithWorkers(k) does, placement and statistics included.
func TestWithTemperingDisabledMatchesWorkers(t *testing.T) {
	p := miller(t)
	opts := []placer.Option{quick, placer.WithSeed(3), placer.WithAlgorithm(placer.SeqPair)}
	a, err := placer.Solve(t.Context(), p, append(opts, placer.WithTempering(4, 0))...)
	if err != nil {
		t.Fatal(err)
	}
	b, err := placer.Solve(t.Context(), p, append(opts, placer.WithWorkers(4))...)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost || !reflect.DeepEqual(a.Placement, b.Placement) {
		t.Fatalf("exchange-disabled tempering diverged from multi-start: cost %v vs %v", a.Cost, b.Cost)
	}
	if a.Stages != b.Stages || a.Moves != b.Moves {
		t.Fatalf("stats diverged: %d/%d stages, %d/%d moves", a.Stages, b.Stages, a.Moves, b.Moves)
	}
}

// TestWithTemperingSolves runs live replica exchange end to end on a
// real benchmark and requires a legal, deterministic result.
func TestWithTemperingSolves(t *testing.T) {
	p := miller(t)
	run := func() *placer.Result {
		res, err := placer.Solve(t.Context(), p, quick, placer.WithSeed(5),
			placer.WithAlgorithm(placer.SeqPair), placer.WithTempering(4, 2))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !a.Legal {
		t.Fatalf("tempering produced an illegal placement: %+v", a.Violations)
	}
	if a.Cost != b.Cost || !reflect.DeepEqual(a.Placement, b.Placement) {
		t.Fatalf("tempering not deterministic: cost %v vs %v", a.Cost, b.Cost)
	}
}
