package placer

import (
	"fmt"
	"sort"

	"repro/internal/circuits"
)

// Benchmark returns one of the paper's built-in benchmark circuits as
// a canonical Problem (flat view plus design hierarchy): "miller"
// (the Miller op amp of Fig. 6), "folded" (the folded-cascode op
// amp), or one of the Table I names (miller_v2, comparator_v2,
// folded_casc, buffer, biasynth, lnamixbias). It is the quickest way
// to a non-trivial Problem for examples and experiments; real
// consumers build Problem values directly or decode them from the
// wire format.
func Benchmark(name string) (*Problem, error) {
	b, err := benchCircuit(name)
	if err != nil {
		return nil, err
	}
	return fromBench(b)
}

// BenchmarkNames lists the names Benchmark accepts, sorted.
func BenchmarkNames() []string {
	names := append([]string{"miller", "folded"}, circuits.TableINames()...)
	sort.Strings(names)
	return names
}

func benchCircuit(name string) (*circuits.Bench, error) {
	switch name {
	case "miller":
		return circuits.MillerOpAmp(), nil
	case "folded":
		return circuits.FoldedCascode(), nil
	}
	b, err := circuits.TableIBench(name)
	if err != nil {
		return nil, fmt.Errorf("placer: unknown benchmark %q (have %v)", name, BenchmarkNames())
	}
	return b, nil
}
