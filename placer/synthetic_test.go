package placer

import (
	"reflect"
	"testing"
)

// TestSyntheticDeterministic pins the generator contract: the same
// spec yields a bit-identical Problem on every call.
func TestSyntheticDeterministic(t *testing.T) {
	spec := SyntheticSpec{N: 2000, Seed: 42, SymmetryDensity: 0.1}
	a, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same spec generated different problems")
	}
	c, err := Synthetic(SyntheticSpec{N: 2000, Seed: 43, SymmetryDensity: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	if reflect.DeepEqual(a.Nets, c.Nets) {
		t.Fatal("different seeds generated identical netlists")
	}
}

// TestSyntheticWellFormed checks structural bounds on a mid-size
// instance: net degrees within [2, MaxNetDegree], aspect ratios and
// areas in range, symmetric pairs dimension-matched.
func TestSyntheticWellFormed(t *testing.T) {
	spec := SyntheticSpec{N: 5000, Seed: 7, SymmetryDensity: 0.2}
	p, err := Synthetic(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	def := spec.withDefaults()
	for i, net := range p.Nets {
		if len(net) < 2 || len(net) > def.MaxNetDegree {
			t.Fatalf("net %d has degree %d outside [2, %d]", i, len(net), def.MaxNetDegree)
		}
	}
	wantNets := int(float64(spec.N) * def.NetsPerModule)
	if len(p.Nets) != wantNets {
		t.Fatalf("%d nets, want %d", len(p.Nets), wantNets)
	}
	// P(degree=2) ≈ 0.43 for the default exponent 2.0 over 2..16;
	// the distribution must stay heavy-tailed with two-pin nets modal.
	byDeg := make(map[int]int)
	for _, net := range p.Nets {
		byDeg[len(net)]++
	}
	for d, c := range byDeg {
		if d != 2 && c >= byDeg[2] {
			t.Fatalf("degree %d (%d nets) outnumbers two-pin nets (%d)", d, c, byDeg[2])
		}
	}
	if byDeg[2] < len(p.Nets)/3 {
		t.Fatalf("degree distribution not heavy on two-pin nets: %d of %d", byDeg[2], len(p.Nets))
	}
	for i, m := range p.Modules {
		area := m.W * m.H
		// Rounding can push the realized area slightly past the spec
		// bounds; a 2× guard band catches real violations.
		if area < def.MinArea/2 || area > def.MaxArea*2 {
			t.Fatalf("module %d area %d far outside [%d, %d]", i, area, def.MinArea, def.MaxArea)
		}
	}
	paired := 0
	for _, g := range p.Symmetry {
		for _, pr := range g.Pairs {
			a, b := p.Modules[pr[0]], p.Modules[pr[1]]
			if a.W != b.W || a.H != b.H {
				t.Fatalf("pair (%d,%d) dims (%d,%d) vs (%d,%d) not matched", pr[0], pr[1], a.W, a.H, b.W, b.H)
			}
			paired += 2
		}
		if len(g.Pairs) > 4 {
			t.Fatalf("group has %d pairs, want at most 4", len(g.Pairs))
		}
	}
	wantPaired := 2 * int(float64(spec.N)*spec.SymmetryDensity/2)
	if paired != wantPaired {
		t.Fatalf("%d paired modules, want %d", paired, wantPaired)
	}
}

// TestSyntheticAtCeiling generates the largest supported instance and
// requires it valid and normalized — the n=10⁵ scaling benchmarks
// depend on this path.
func TestSyntheticAtCeiling(t *testing.T) {
	p, err := Synthetic(SyntheticSpec{N: MaxModules, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.N() != MaxModules {
		t.Fatalf("N = %d, want %d", p.N(), MaxModules)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestSyntheticRejectsBadSpecs pins input validation.
func TestSyntheticRejectsBadSpecs(t *testing.T) {
	bad := []SyntheticSpec{
		{N: 0},
		{N: MaxModules + 1},
		{N: 10, AspectMin: 2, AspectMax: 1},
		{N: 10, MinArea: 100, MaxArea: 10},
		{N: 10, SymmetryDensity: 1.5},
	}
	for i, spec := range bad {
		if _, err := Synthetic(spec); err == nil {
			t.Fatalf("spec %d accepted: %+v", i, spec)
		}
	}
}
