package placer

import (
	"context"
	"fmt"
	"sync"
)

// Info describes a registered placement algorithm.
type Info struct {
	// Name is the registry key — the string WithAlgorithm, the CLI's
	// -method flag and the wire format's options.method all accept.
	Name string
	// Hierarchical marks engines that consume the design hierarchy
	// (synthesizing one when the problem carries none); flat engines
	// work on the id-based module view.
	Hierarchical bool
	// Portfolio marks engines raced by WithPortfolio. Hierarchical
	// engines are never raced even if they claim eligibility: the
	// portfolio compares flat representations like for like.
	Portfolio bool
	// Description is a one-line human-readable summary.
	Description string
}

// Kind returns "hierarchical" or "flat".
func (i Info) Kind() string {
	if i.Hierarchical {
		return "hierarchical"
	}
	return "flat"
}

// PortfolioEligible reports whether WithPortfolio races this engine:
// the one definition of eligibility, shared by the race itself and
// every listing of it.
func (i Info) PortfolioEligible() bool {
	return i.Portfolio && !i.Hierarchical
}

// Engine is one placement algorithm behind the registry. Implementors
// receive a validated, normalized problem and the resolved solver
// options, and must honor ctx at least at annealing stage boundaries
// (a cancelled run returns its best-so-far result with
// Result.Cancelled set, not an error).
type Engine interface {
	Info() Info
	Solve(ctx context.Context, p *Problem, opt EngineOptions) (*Result, error)
}

// Factory builds a fresh Engine per solve. Engines may keep per-run
// state; the registry never reuses one across solves.
type Factory func() Engine

var (
	regMu    sync.RWMutex
	registry = map[string]Factory{}
	regOrder []string
)

// Register adds an algorithm under its name; the six built-in engines
// self-register at init, and external backends register their own the
// same way. The name becomes valid everywhere at once: WithAlgorithm,
// the portfolio set (per Info), analogplace -algorithms/-method and
// the daemon's GET /v1/algorithms all enumerate this registry.
// Register panics on an empty name, nil factory, or duplicate name —
// a registration conflict is a programming error, not a runtime
// condition.
func Register(name string, factory Factory) {
	if name == "" {
		panic("placer: Register with empty algorithm name")
	}
	if factory == nil {
		panic(fmt.Sprintf("placer: Register(%q) with nil factory", name))
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("placer: algorithm %q registered twice", name))
	}
	registry[name] = factory
	regOrder = append(regOrder, name)
}

// Lookup returns the factory registered under name.
func Lookup(name string) (Factory, bool) {
	regMu.RLock()
	defer regMu.RUnlock()
	f, ok := registry[name]
	return f, ok
}

// Known reports whether name is a registered algorithm.
func Known(name string) bool {
	_, ok := Lookup(name)
	return ok
}

// Algorithms lists every registered algorithm's Info, in registration
// order (the built-ins first, in portfolio tie-break order).
func Algorithms() []Info {
	regMu.RLock()
	defer regMu.RUnlock()
	out := make([]Info, 0, len(regOrder))
	for _, name := range regOrder {
		out = append(out, registry[name]().Info())
	}
	return out
}

// PortfolioAlgorithms lists the algorithms WithPortfolio races, in
// racing order (which is also the deterministic tie-break order):
// portfolio-eligible, non-hierarchical engines, by registration.
func PortfolioAlgorithms() []string {
	var names []string
	for _, info := range Algorithms() {
		if info.PortfolioEligible() {
			names = append(names, info.Name)
		}
	}
	return names
}

// ErrUnknownAlgorithm makes the unknown-algorithm failure one shared
// message across every front door — placer.Solve, the wire format's
// option validation (and therefore the daemon's 400s) and the CLI —
// so clients see the same error however they arrive.
func ErrUnknownAlgorithm(name string) error {
	return fmt.Errorf("placer: unknown algorithm %q (analogplace -algorithms or GET /v1/algorithms list the registry)", name)
}
