package placer

import (
	"fmt"
	"math"
	"sort"
)

// Module is one placeable rectangle of W × H layout units.
type Module struct {
	Name string
	W, H int
}

// SymGroup is a symmetry group over module ids: Pairs mirror about a
// shared vertical axis, Selfs are self-symmetric on it. A module may
// belong to at most one group.
type SymGroup struct {
	Pairs [][2]int
	Selfs []int
}

// Objective carries the weights of the composable cost model every
// engine optimizes. Weights are literal: a zero WireWeight means no
// wirelength term, while a zero AreaWeight keeps the default area
// weight of 1. ProxWeight applies to the flat engines' proximity pull
// term; the hierarchical engine always enforces proximity through its
// fragments penalty.
type Objective struct {
	AreaWeight float64
	WireWeight float64
	// OutlineW/OutlineH, when both positive, add a fixed-outline term:
	// a quadratic penalty on the bounding box exceeding the outline.
	OutlineW, OutlineH int
	// OutlineWeight scales that penalty (0 = heuristic default).
	OutlineWeight float64
	ProxWeight    float64
	ThermalWeight float64
	ThermalSigma  float64
}

// Hierarchy node kinds.
const (
	KindNone           = ""
	KindSymmetry       = "symmetry"
	KindCommonCentroid = "common_centroid"
	KindProximity      = "proximity"
)

// Node is one node of the layout design hierarchy (the constraint
// tree the hierarchical HB*-tree engine consumes). Devices name
// modules; symmetry Pairs and Selfs may name either modules or child
// nodes (a child participates as one rigid object).
type Node struct {
	Name     string
	Kind     string // one of the Kind constants
	Devices  []string
	Pairs    [][2]string
	Selfs    []string
	Units    map[string][]string
	Children []*Node
}

// Problem is the canonical placement instance every consumer of this
// repository speaks: the CLI, the daemon's wire format, the engines
// and the examples all convert to or from it. It unifies the flat
// inputs (modules, id-based symmetry groups, nets, proximity groups)
// with the optional design hierarchy; engines that only understand
// one of the two derive what they need (flat engines bind
// hierarchy-spelled symmetry, the hierarchical engine synthesizes a
// tree from flat groups).
type Problem struct {
	Name    string
	Modules []Module
	// Symmetry groups over module ids (vertical axes).
	Symmetry []SymGroup
	// Nets lists signal nets as module-id sets for wirelength.
	Nets [][]int
	// Proximity lists proximity groups as module-id sets.
	Proximity [][]int
	// Power gives per-module dissipated power for the thermal term
	// (nil = area-normalized default).
	Power     []float64
	Objective Objective
	Hierarchy *Node
}

// N returns the module count.
func (p *Problem) N() int { return len(p.Modules) }

// Geometry ceilings: module dimensions and counts are bounded so
// packing coordinate sums and area products stay far inside int64 on
// untrusted input (MaxModules·MaxDim² ≤ 2⁵⁷).
const (
	MaxModules = 100_000
	MaxDim     = 1 << 20
)

// kinds maps hierarchy kind strings to validity.
var kinds = map[string]bool{KindNone: true, KindSymmetry: true, KindCommonCentroid: true, KindProximity: true}

// Validate checks the problem's internal consistency without
// modifying it. Solve runs it automatically; builders assembling
// problems programmatically can run it early for better error
// locality.
func (p *Problem) Validate() error {
	n := len(p.Modules)
	if n == 0 {
		return fmt.Errorf("placer: problem has no modules")
	}
	if n > MaxModules {
		return fmt.Errorf("placer: %d modules over the limit of %d", n, MaxModules)
	}
	names := make(map[string]bool, n)
	for i, m := range p.Modules {
		if m.Name == "" {
			return fmt.Errorf("placer: module %d has no name", i)
		}
		if names[m.Name] {
			return fmt.Errorf("placer: duplicate module name %q", m.Name)
		}
		names[m.Name] = true
		if m.W <= 0 || m.H <= 0 {
			return fmt.Errorf("placer: module %q has non-positive size %dx%d", m.Name, m.W, m.H)
		}
		if m.W > MaxDim || m.H > MaxDim {
			return fmt.Errorf("placer: module %q size %dx%d over the limit of %d", m.Name, m.W, m.H, MaxDim)
		}
	}
	inGroup := make(map[int]bool)
	for gi, g := range p.Symmetry {
		if len(g.Pairs) == 0 && len(g.Selfs) == 0 {
			return fmt.Errorf("placer: symmetry group %d is empty", gi)
		}
		check := func(m int) error {
			if m < 0 || m >= n {
				return fmt.Errorf("placer: symmetry group %d references module %d out of range [0,%d)", gi, m, n)
			}
			if inGroup[m] {
				return fmt.Errorf("placer: module %d appears twice across symmetry groups", m)
			}
			inGroup[m] = true
			return nil
		}
		for _, pr := range g.Pairs {
			if pr[0] == pr[1] {
				return fmt.Errorf("placer: symmetry group %d pairs module %d with itself", gi, pr[0])
			}
			if err := check(pr[0]); err != nil {
				return err
			}
			if err := check(pr[1]); err != nil {
				return err
			}
		}
		for _, s := range g.Selfs {
			if err := check(s); err != nil {
				return err
			}
		}
	}
	idLists := func(what string, lists [][]int, minLen int) error {
		for li, list := range lists {
			if len(list) < minLen {
				return fmt.Errorf("placer: %s %d has fewer than %d members", what, li, minLen)
			}
			seen := make(map[int]bool, len(list))
			for _, m := range list {
				if m < 0 || m >= n {
					return fmt.Errorf("placer: %s %d references module %d out of range [0,%d)", what, li, m, n)
				}
				if seen[m] {
					return fmt.Errorf("placer: %s %d lists module %d twice", what, li, m)
				}
				seen[m] = true
			}
		}
		return nil
	}
	if err := idLists("net", p.Nets, 2); err != nil {
		return err
	}
	if err := idLists("proximity group", p.Proximity, 2); err != nil {
		return err
	}
	if p.Power != nil && len(p.Power) != n {
		return fmt.Errorf("placer: power has %d entries for %d modules", len(p.Power), n)
	}
	for i, pw := range p.Power {
		if pw < 0 || math.IsNaN(pw) || math.IsInf(pw, 0) {
			return fmt.Errorf("placer: power[%d] = %v is not a finite non-negative number", i, pw)
		}
	}
	if err := p.Objective.validate(); err != nil {
		return err
	}
	if p.Hierarchy != nil {
		owned := make(map[string]bool)
		if err := validateNode(p.Hierarchy, names, owned); err != nil {
			return err
		}
	}
	return nil
}

func (o *Objective) validate() error {
	weights := []struct {
		name string
		v    float64
	}{
		{"area weight", o.AreaWeight},
		{"wire weight", o.WireWeight},
		{"outline weight", o.OutlineWeight},
		{"proximity weight", o.ProxWeight},
		{"thermal weight", o.ThermalWeight},
		{"thermal sigma", o.ThermalSigma},
	}
	for _, w := range weights {
		if w.v < 0 || math.IsNaN(w.v) || math.IsInf(w.v, 0) {
			return fmt.Errorf("placer: objective %s = %v is not a finite non-negative number", w.name, w.v)
		}
	}
	if o.OutlineW < 0 || o.OutlineH < 0 {
		return fmt.Errorf("placer: negative outline %dx%d", o.OutlineW, o.OutlineH)
	}
	if (o.OutlineW > 0) != (o.OutlineH > 0) {
		return fmt.Errorf("placer: outline needs both dimensions (got %dx%d)", o.OutlineW, o.OutlineH)
	}
	return nil
}

// validateNode walks a hierarchy node: kinds must be known, device
// references must name modules not owned by another node, and
// symmetry pairs/selfs must name this node's devices or children.
func validateNode(nd *Node, modules map[string]bool, owned map[string]bool) error {
	if !kinds[nd.Kind] {
		return fmt.Errorf("placer: hierarchy node %q has unknown kind %q", nd.Name, nd.Kind)
	}
	local := make(map[string]bool, len(nd.Devices)+len(nd.Children))
	for _, d := range nd.Devices {
		if !modules[d] {
			return fmt.Errorf("placer: hierarchy node %q references unknown module %q", nd.Name, d)
		}
		if owned[d] {
			return fmt.Errorf("placer: module %q owned by two hierarchy nodes", d)
		}
		owned[d] = true
		local[d] = true
	}
	for _, c := range nd.Children {
		// Child names are load-bearing identities — pairs/selfs/units
		// resolve against them, and flat-group derivation resolves
		// module names globally — so they must be unambiguous both
		// within the node and against the module namespace.
		if c.Name == "" {
			return fmt.Errorf("placer: hierarchy node %q has an unnamed child", nd.Name)
		}
		if local[c.Name] {
			return fmt.Errorf("placer: hierarchy node %q has ambiguous member name %q", nd.Name, c.Name)
		}
		if modules[c.Name] {
			return fmt.Errorf("placer: hierarchy node name %q collides with a module name", c.Name)
		}
		local[c.Name] = true
	}
	symUsed := make(map[string]bool, 2*len(nd.Pairs)+len(nd.Selfs))
	ref := func(name string) error {
		if !local[name] {
			return fmt.Errorf("placer: hierarchy node %q symmetry references %q, which is neither a device nor a child of it", nd.Name, name)
		}
		if symUsed[name] {
			return fmt.Errorf("placer: hierarchy node %q symmetry lists %q twice", nd.Name, name)
		}
		symUsed[name] = true
		return nil
	}
	for _, pr := range nd.Pairs {
		if pr[0] == pr[1] {
			return fmt.Errorf("placer: hierarchy node %q pairs %q with itself", nd.Name, pr[0])
		}
		if err := ref(pr[0]); err != nil {
			return err
		}
		if err := ref(pr[1]); err != nil {
			return err
		}
	}
	for _, s := range nd.Selfs {
		if err := ref(s); err != nil {
			return err
		}
	}
	unitNames := make([]string, 0, len(nd.Units))
	for name := range nd.Units {
		unitNames = append(unitNames, name)
	}
	sort.Strings(unitNames) // deterministic error choice
	for _, name := range unitNames {
		devs := nd.Units[name]
		if len(devs) == 0 {
			return fmt.Errorf("placer: hierarchy node %q common-centroid unit %q is empty", nd.Name, name)
		}
		for _, d := range devs {
			if !local[d] {
				return fmt.Errorf("placer: hierarchy node %q common-centroid unit %q references %q, which is neither a device nor a child of it", nd.Name, name, d)
			}
		}
	}
	for _, c := range nd.Children {
		if err := validateNode(c, modules, owned); err != nil {
			return err
		}
	}
	return nil
}

// Normalize rewrites the problem into its canonical form: pair
// endpoints ordered, member lists sorted, group and net lists sorted
// lexicographically, and empty slices nil. Two semantically identical
// problems normalize to equal values — this is what makes the wire
// format's content hash a content address. Objective weights whose
// zero value means a fixed default get that default written
// explicitly (area weight 1); weights whose zero means "derived per
// problem" (outline weight heuristic, thermal sigma) keep 0 as their
// canonical spelling. Solve normalizes a copy automatically.
func (p *Problem) Normalize() {
	if p.Objective.AreaWeight == 0 {
		p.Objective.AreaWeight = 1
	}
	for gi := range p.Symmetry {
		g := &p.Symmetry[gi]
		for pi := range g.Pairs {
			if g.Pairs[pi][0] > g.Pairs[pi][1] {
				g.Pairs[pi][0], g.Pairs[pi][1] = g.Pairs[pi][1], g.Pairs[pi][0]
			}
		}
		sort.Slice(g.Pairs, func(i, j int) bool {
			if g.Pairs[i][0] != g.Pairs[j][0] {
				return g.Pairs[i][0] < g.Pairs[j][0]
			}
			return g.Pairs[i][1] < g.Pairs[j][1]
		})
		sort.Ints(g.Selfs)
		if len(g.Pairs) == 0 {
			g.Pairs = nil
		}
		if len(g.Selfs) == 0 {
			g.Selfs = nil
		}
	}
	sort.Slice(p.Symmetry, func(i, j int) bool {
		return symKey(p.Symmetry[i]) < symKey(p.Symmetry[j])
	})
	normalizeIDLists(p.Nets)
	normalizeIDLists(p.Proximity)
	if len(p.Symmetry) == 0 {
		p.Symmetry = nil
	}
	if len(p.Nets) == 0 {
		p.Nets = nil
	}
	if len(p.Proximity) == 0 {
		p.Proximity = nil
	}
	if len(p.Power) == 0 {
		p.Power = nil
	}
	p.Hierarchy.normalize()
}

// normalize canonicalizes a hierarchy subtree: pair endpoints
// ordered, member lists sorted, children ordered by their (unique)
// names. The normalized form is also the form that solves, so
// different spellings of one tree hash and behave identically.
func (nd *Node) normalize() {
	if nd == nil {
		return
	}
	sort.Strings(nd.Devices)
	for pi := range nd.Pairs {
		if nd.Pairs[pi][0] > nd.Pairs[pi][1] {
			nd.Pairs[pi][0], nd.Pairs[pi][1] = nd.Pairs[pi][1], nd.Pairs[pi][0]
		}
	}
	sort.Slice(nd.Pairs, func(i, j int) bool {
		if nd.Pairs[i][0] != nd.Pairs[j][0] {
			return nd.Pairs[i][0] < nd.Pairs[j][0]
		}
		return nd.Pairs[i][1] < nd.Pairs[j][1]
	})
	sort.Strings(nd.Selfs)
	for _, devs := range nd.Units {
		sort.Strings(devs)
	}
	for _, c := range nd.Children {
		c.normalize()
	}
	sort.Slice(nd.Children, func(i, j int) bool { return nd.Children[i].Name < nd.Children[j].Name })
	if len(nd.Devices) == 0 {
		nd.Devices = nil
	}
	if len(nd.Pairs) == 0 {
		nd.Pairs = nil
	}
	if len(nd.Selfs) == 0 {
		nd.Selfs = nil
	}
	if len(nd.Children) == 0 {
		nd.Children = nil
	}
}

// symKey is a group's smallest member, its canonical sort key (groups
// are disjoint, so keys are distinct on valid problems).
func symKey(g SymGroup) int {
	key := math.MaxInt
	for _, pr := range g.Pairs {
		if pr[0] < key {
			key = pr[0]
		}
	}
	for _, s := range g.Selfs {
		if s < key {
			key = s
		}
	}
	return key
}

func normalizeIDLists(lists [][]int) {
	for _, l := range lists {
		sort.Ints(l)
	}
	sort.Slice(lists, func(i, j int) bool {
		a, b := lists[i], lists[j]
		for k := 0; k < len(a) && k < len(b); k++ {
			if a[k] != b[k] {
				return a[k] < b[k]
			}
		}
		return len(a) < len(b)
	})
}

// Clone deep-copies the problem, preserving nil-versus-empty
// distinctions (they matter for canonical encodings).
func (p *Problem) Clone() *Problem {
	c := *p
	c.Modules = append([]Module(nil), p.Modules...)
	if p.Symmetry != nil {
		c.Symmetry = make([]SymGroup, len(p.Symmetry))
		for i, g := range p.Symmetry {
			c.Symmetry[i] = SymGroup{
				Pairs: clonePairs(g.Pairs),
				Selfs: append([]int(nil), g.Selfs...),
			}
		}
	}
	c.Nets = cloneIDLists(p.Nets)
	c.Proximity = cloneIDLists(p.Proximity)
	c.Power = append([]float64(nil), p.Power...)
	c.Hierarchy = p.Hierarchy.Clone()
	return &c
}

func clonePairs(ps [][2]int) [][2]int {
	return append([][2]int(nil), ps...)
}

func cloneIDLists(lists [][]int) [][]int {
	if lists == nil {
		return nil
	}
	out := make([][]int, len(lists))
	for i, l := range lists {
		out[i] = append([]int(nil), l...)
	}
	return out
}

// Clone deep-copies a hierarchy subtree (nil-safe).
func (nd *Node) Clone() *Node {
	if nd == nil {
		return nil
	}
	c := *nd
	c.Devices = append([]string(nil), nd.Devices...)
	c.Pairs = append([][2]string(nil), nd.Pairs...)
	c.Selfs = append([]string(nil), nd.Selfs...)
	if nd.Units != nil {
		c.Units = make(map[string][]string, len(nd.Units))
		for k, v := range nd.Units {
			c.Units[k] = append([]string(nil), v...)
		}
	}
	if nd.Children != nil {
		c.Children = make([]*Node, len(nd.Children))
		for i, ch := range nd.Children {
			c.Children[i] = ch.Clone()
		}
	}
	return &c
}
