package repro

import (
	"math/rand"
	"testing"

	"repro/internal/anneal"
	"repro/internal/bstar"
	"repro/internal/circuits"
	"repro/internal/core"
	"repro/internal/hbstar"
	"repro/internal/place"
	"repro/internal/seqpair"
	"repro/internal/sizing"
)

// ---------------------------------------------------------------------------
// Section II — sequence-pairs with symmetry constraints.

// BenchmarkFig1SymmetricPacking packs the paper's Fig. 1 code into a
// geometrically symmetric placement.
func BenchmarkFig1SymmetricPacking(b *testing.B) {
	sp, err := seqpair.FromSequences([]int{4, 1, 0, 5, 2, 3, 6}, []int{4, 1, 2, 3, 5, 0, 6})
	if err != nil {
		b.Fatal(err)
	}
	groups := []seqpair.Group{{Pairs: [][2]int{{2, 3}, {1, 6}}, Selfs: []int{0, 5}}}
	w := []int{16, 10, 9, 9, 12, 14, 10}
	h := []int{8, 12, 10, 10, 30, 8, 12}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, _, err := sp.PackSymmetric(w, h, groups); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLemmaEnumeration counts all symmetric-feasible codes of the
// paper's n = 7 example (35,280 of 25,401,600) by pruned enumeration.
func BenchmarkLemmaEnumeration(b *testing.B) {
	n, groups := core.PaperLemmaExample()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if got := seqpair.CountSFExact(n, groups); got != 35280 {
			b.Fatalf("count = %d", got)
		}
	}
}

// BenchmarkSeqPairPackingScaling measures one packing evaluation at
// growing module counts — the O(n log log n) claim of Section II.
func BenchmarkSeqPairPackingScaling(b *testing.B) {
	for _, n := range []int{100, 1000, 10000} {
		b.Run(sizeName(n), func(b *testing.B) {
			rng := rand.New(rand.NewSource(1))
			sp := seqpair.New(n)
			sp.Shuffle(rng)
			w := make([]int, n)
			h := make([]int, n)
			for i := range w {
				w[i] = 1 + rng.Intn(50)
				h[i] = 1 + rng.Intn(50)
			}
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sp.Pack(w, h)
			}
		})
	}
}

// BenchmarkPackingNaiveVsFast is the ablation of the vEB-queue packer
// against the O(n²) longest-path packer.
func BenchmarkPackingNaiveVsFast(b *testing.B) {
	const n = 2000
	rng := rand.New(rand.NewSource(2))
	sp := seqpair.New(n)
	sp.Shuffle(rng)
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		h[i] = 1 + rng.Intn(50)
	}
	b.Run("naive", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp.PackNaive(w, h)
		}
	})
	b.Run("fast", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sp.Pack(w, h)
		}
	})
}

// BenchmarkSFMovesVsRejection is the ablation of the S-F-preserving
// move set against arbitrary moves with rejection of non-S-F codes.
func BenchmarkSFMovesVsRejection(b *testing.B) {
	bench := circuits.MillerOpAmp()
	prob, err := place.FromBench(bench)
	if err != nil {
		b.Fatal(err)
	}
	opt := anneal.Options{Seed: 3, MovesPerStage: 60, MaxStages: 60, StallStages: 20}
	b.Run("sf-moves", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := place.SeqPair(prob, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("rejection", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := place.SeqPairUnconstrainedMoves(prob, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Section III — hierarchical placement.

// BenchmarkHBStarPacking measures one full hierarchical packing of a
// mid-size benchmark's HB*-tree forest.
func BenchmarkHBStarPacking(b *testing.B) {
	bench, err := circuits.TableIBench("folded_casc")
	if err != nil {
		b.Fatal(err)
	}
	forest, err := hbstar.Build(bench.Tree, func(name string) (int, int, error) {
		d := bench.Circuit.Device(name)
		return d.FW, d.FH, nil
	})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := forest.Pack(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkHBStarContourVsBBox ablates the contour nodes: packing with
// skyline outlines versus bounding-box outlines.
func BenchmarkHBStarContourVsBBox(b *testing.B) {
	bench, err := circuits.TableIBench("buffer")
	if err != nil {
		b.Fatal(err)
	}
	build := func(bbox bool) *hbstar.Forest {
		f, err := hbstar.Build(bench.Tree, func(name string) (int, int, error) {
			d := bench.Circuit.Device(name)
			return d.FW, d.FH, nil
		})
		if err != nil {
			b.Fatal(err)
		}
		f.BBoxOutline = bbox
		return f
	}
	for _, mode := range []struct {
		name string
		bbox bool
	}{{"contour", false}, {"bbox", true}} {
		f := build(mode.bbox)
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := f.Pack(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// ---------------------------------------------------------------------------
// Section IV — deterministic placement with shape functions (Table I,
// Figs. 7 and 8).

// BenchmarkTable1 regenerates one Table I row per sub-benchmark, ESF
// and RSF.
func BenchmarkTable1(b *testing.B) {
	for _, name := range []string{"miller_v2", "comparator_v2", "folded_casc"} {
		bench, err := circuits.TableIBench(name)
		if err != nil {
			b.Fatal(err)
		}
		for _, m := range []struct {
			label  string
			method core.Method
		}{{"esf", core.MethodDeterministicESF}, {"rsf", core.MethodDeterministicRSF}} {
			b.Run(name+"/"+m.label, func(b *testing.B) {
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					res, err := core.PlaceBench(bench, m.method, anneal.Options{})
					if err != nil {
						b.Fatal(err)
					}
					if !res.Legal {
						b.Fatal("illegal placement")
					}
				}
			})
		}
	}
}

// BenchmarkTable1Large runs the two largest Table I circuits (the
// paper's biasynth and lnamixbias rows).
func BenchmarkTable1Large(b *testing.B) {
	for _, name := range []string{"biasynth", "lnamixbias"} {
		bench, err := circuits.TableIBench(name)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := core.PlaceBench(bench, core.MethodDeterministicESF, anneal.Options{}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig8Curves computes the ESF and RSF staircases of the
// lnamixbias root function (the data of Fig. 8).
func BenchmarkFig8Curves(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		esf, rsf, err := core.RunFig8("lnamixbias")
		if err != nil {
			b.Fatal(err)
		}
		if len(esf) == 0 || len(rsf) == 0 {
			b.Fatal("empty curves")
		}
	}
}

// BenchmarkBStarEnumeration walks all n!·Catalan(n) trees for n = 6
// (95,040 trees), the kernel of basic-module-set enumeration.
func BenchmarkBStarEnumeration(b *testing.B) {
	w := []int{3, 5, 7, 9, 11, 13}
	h := []int{13, 11, 9, 7, 5, 3}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		count := 0
		bstar.EnumerateTrees(w, h, func(*bstar.Tree) bool {
			count++
			return true
		})
		if count != 95040 {
			b.Fatalf("count = %d", count)
		}
	}
}

// ---------------------------------------------------------------------------
// Representation ablations (Section II's motivation).

// BenchmarkSlicingVsNonslicing compares the slicing baseline against
// the non-slicing B*-tree placer on heterogeneous analog sizes.
func BenchmarkSlicingVsNonslicing(b *testing.B) {
	bench, err := circuits.TableIBench("miller_v2")
	if err != nil {
		b.Fatal(err)
	}
	prob, err := place.FromBench(bench)
	if err != nil {
		b.Fatal(err)
	}
	prob.Groups = nil
	prob.WireWeight = 0
	opt := anneal.Options{Seed: 5, MovesPerStage: 60, MaxStages: 80, StallStages: 25}
	b.Run("slicing", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := place.Slicing(prob, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Placement.Area()), "area")
		}
	})
	b.Run("bstar", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := place.BStar(prob, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(float64(res.Placement.Area()), "area")
		}
	})
}

// BenchmarkAbsoluteVsTopological compares the absolute-coordinate
// baseline (feasible and infeasible configurations) against the
// topological B*-tree placer.
func BenchmarkAbsoluteVsTopological(b *testing.B) {
	bench := circuits.MillerOpAmp()
	prob, err := place.FromBench(bench)
	if err != nil {
		b.Fatal(err)
	}
	prob.Groups = nil
	opt := anneal.Options{Seed: 7, MovesPerStage: 80, MaxStages: 80, StallStages: 25}
	b.Run("absolute", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := place.Absolute(prob, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("topological", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := place.BStar(prob, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Section V — layout-aware sizing (Fig. 10).

// BenchmarkFig10Sizing runs the two sizing flows.
func BenchmarkFig10Sizing(b *testing.B) {
	opt := anneal.Options{Seed: 1, MovesPerStage: 250, MaxStages: 250, StallStages: 60}
	b.Run("nominal", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sizing.Run(sizing.Problem{
				Spec: sizing.Fig10Spec(), Mode: sizing.Nominal, Base: sizing.DefaultBase(),
			}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("aware", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := sizing.Run(sizing.Problem{
				Spec: sizing.Fig10Spec(), Mode: sizing.LayoutAware, MaxAspect: 1.3,
				Base: sizing.DefaultBase(),
			}, opt); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---------------------------------------------------------------------------
// Optimization-engine hot path (zero-allocation packing, multi-start).

// BenchmarkBStarTreePacking compares the compatibility wrapper against
// workspace-reuse packing of one B*-tree — the annealing inner loop's
// dominant operation. The packinto variant is allocation-free at
// steady state.
func BenchmarkBStarTreePacking(b *testing.B) {
	const n = 100
	rng := rand.New(rand.NewSource(4))
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(40)
		h[i] = 1 + rng.Intn(40)
	}
	tr := bstar.NewRandom(w, h, rng)
	b.Run("pack", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.Pack()
		}
	})
	b.Run("packinto", func(b *testing.B) {
		var ws bstar.PackWorkspace
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			tr.PackInto(&ws)
		}
	})
}

// BenchmarkSeqPairPackInto measures the fully workspace-reused FAST-SP
// evaluation (the in-place annealer's path), against which Pack's
// caller-owned slices are the only remaining allocations.
func BenchmarkSeqPairPackInto(b *testing.B) {
	const n = 1000
	rng := rand.New(rand.NewSource(1))
	sp := seqpair.New(n)
	sp.Shuffle(rng)
	w := make([]int, n)
	h := make([]int, n)
	for i := range w {
		w[i] = 1 + rng.Intn(50)
		h[i] = 1 + rng.Intn(50)
	}
	var ws seqpair.PackWorkspace
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp.PackInto(&ws, w, h)
	}
}

// BenchmarkParallelMultiStart compares one serial annealing chain
// against 4-worker multi-start with the same per-chain schedule (equal
// wall-clock on a 4-core machine; worker 0 replicates the serial
// chain, so the reduction never returns a worse cost).
func BenchmarkParallelMultiStart(b *testing.B) {
	bench := circuits.MillerOpAmp()
	prob, err := place.FromBench(bench)
	if err != nil {
		b.Fatal(err)
	}
	opt := anneal.Options{Seed: 3, MovesPerStage: 100, MaxStages: 40, StallStages: 40}
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := place.SeqPair(prob, opt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Cost, "cost")
		}
	})
	b.Run("workers4", func(b *testing.B) {
		popt := opt
		popt.Workers = 4
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := place.SeqPair(prob, popt)
			if err != nil {
				b.Fatal(err)
			}
			b.ReportMetric(res.Cost, "cost")
		}
	})
}

// ---------------------------------------------------------------------------
// Composable objective: incremental dirty-net evaluation.

// wirelengthHeavyProblem builds a synthetic wirelength-heavy instance:
// n modules and 2n random nets of 3–6 pins, the regime where cost
// evaluation dominates the annealing move.
func wirelengthHeavyProblem(n int, seed int64) *place.Problem {
	rng := rand.New(rand.NewSource(seed))
	p := &place.Problem{
		Names:      make([]string, n),
		W:          make([]int, n),
		H:          make([]int, n),
		WireWeight: 1,
	}
	for i := 0; i < n; i++ {
		p.Names[i] = "m" + itoa(i)
		p.W[i] = 1 + rng.Intn(30)
		p.H[i] = 1 + rng.Intn(30)
	}
	for len(p.Nets) < 2*n {
		deg := 3 + rng.Intn(4)
		net := make([]int, 0, deg)
		for len(net) < deg {
			net = append(net, rng.Intn(n))
		}
		p.Nets = append(p.Nets, net)
	}
	return p
}

// BenchmarkIncrementalDirtyNet measures the composable objective's
// incremental dirty-net evaluation against full recompute on a
// wirelength-heavy instance (n = 300 modules, 600 nets).
//
// The placer-* pair runs the whole absolute-coordinate placer — the
// same move sequence in both modes (incremental evaluation is exact,
// so acceptance decisions are identical) — with Problem.FullEval
// toggling the evaluation strategy. The model-* pair isolates the
// HPWL term itself under single-module moves: full recompute of all
// 600 nets versus the module→nets dirty set.
func BenchmarkIncrementalDirtyNet(b *testing.B) {
	const n = 300
	opt := anneal.Options{Seed: 9, MovesPerStage: 60, MaxStages: 40, StallStages: 12}
	for _, mode := range []struct {
		name string
		full bool
	}{{"placer-full", true}, {"placer-incremental", false}} {
		b.Run(mode.name, func(b *testing.B) {
			prob := wirelengthHeavyProblem(n, 11)
			prob.FullEval = mode.full
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := place.Absolute(prob, opt)
				if err != nil {
					b.Fatal(err)
				}
				b.ReportMetric(res.Cost, "cost")
			}
		})
	}

	prob := wirelengthHeavyProblem(n, 11)
	coords := func(rng *rand.Rand) (x, y []int) {
		x = make([]int, n)
		y = make([]int, n)
		for i := range x {
			x[i], y[i] = rng.Intn(2000), rng.Intn(2000)
		}
		return x, y
	}
	b.Run("model-full", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		x, y := coords(rng)
		m := prob.NewModel()
		m.Eval(x, y, prob.W, prob.H, nil)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mi := rng.Intn(n)
			x[mi], y[mi] = rng.Intn(2000), rng.Intn(2000)
			m.Eval(x, y, prob.W, prob.H, nil)
		}
	})
	b.Run("model-incremental", func(b *testing.B) {
		rng := rand.New(rand.NewSource(2))
		x, y := coords(rng)
		m := prob.NewModel()
		m.Eval(x, y, prob.W, prob.H, nil)
		moved := make([]int, 1)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			mi := rng.Intn(n)
			x[mi], y[mi] = rng.Intn(2000), rng.Intn(2000)
			moved[0] = mi
			m.UpdateMoved(x, y, prob.W, prob.H, nil, moved)
		}
	})
}

func sizeName(n int) string { return "n" + itoa(n) }

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [12]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
